"""The typo channel: realistic corruptions producing near-duplicates.

The paper's experiments hinge on a population of high-similarity pairs
("adding a large number of very similar pairs would increase the output
size as well as the time significantly", Table 2 discussion). This module
plants them: given a clean string, emit a corrupted variant via the error
classes observed in warehouse data — single-character edits (typos),
token-level abbreviation/expansion ("corporation" ↔ "corp"), token drops,
and adjacent-token transposition.

Each corruption kind is tunable; the default mix keeps most variants above
0.8 edit similarity so they land inside the paper's threshold sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["CorruptionConfig", "corrupt", "keyboard_typo", "ocr_confusion"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: QWERTY adjacency: realistic fat-finger substitutions.
_KEYBOARD_NEIGHBORS = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
    "1": "2", "2": "13", "3": "24", "4": "35", "5": "46", "6": "57",
    "7": "68", "8": "79", "9": "80", "0": "9",
}

#: Classic OCR glyph confusions (both directions where sensible).
_OCR_CONFUSIONS = {
    "0": "o", "o": "0", "1": "l", "l": "1", "i": "1", "5": "s", "s": "5",
    "8": "b", "b": "8", "2": "z", "z": "2", "g": "9", "9": "g", "e": "c",
    "c": "e", "rn": "m", "m": "rn", "vv": "w", "w": "vv",
}

#: Common abbreviation pairs applied in either direction.
_ABBREVIATIONS = (
    ("street", "st"),
    ("avenue", "ave"),
    ("road", "rd"),
    ("boulevard", "blvd"),
    ("lane", "ln"),
    ("drive", "dr"),
    ("court", "ct"),
    ("place", "pl"),
    ("apartment", "apt"),
    ("suite", "ste"),
    ("north", "n"),
    ("south", "s"),
    ("east", "e"),
    ("west", "w"),
    ("corporation", "corp"),
    ("incorporated", "inc"),
    ("company", "co"),
    ("limited", "ltd"),
)


@dataclass(frozen=True)
class CorruptionConfig:
    """Probabilities of each corruption kind (applied independently).

    ``max_char_edits`` caps the number of single-character typos injected,
    keeping the variant within a known edit distance of the original.
    ``char_edit_style`` selects how typos are drawn: ``"uniform"`` (any
    insert/delete/substitute), ``"keyboard"`` (QWERTY-adjacent
    substitutions plus occasional insert/delete), or ``"ocr"`` (glyph
    confusions like 0↔o, 1↔l, rn↔m).
    """

    char_edit_prob: float = 0.9
    max_char_edits: int = 2
    char_edit_style: str = "uniform"
    abbreviation_prob: float = 0.25
    token_drop_prob: float = 0.1
    token_swap_prob: float = 0.1


def keyboard_typo(rng: random.Random, text: str) -> str:
    """One QWERTY-realistic typo: adjacent-key substitution most of the
    time, with occasional doubled or dropped characters."""
    if not text:
        return rng.choice(_ALPHABET)
    pos = rng.randrange(len(text))
    ch = text[pos].lower()
    roll = rng.random()
    if roll < 0.7 and ch in _KEYBOARD_NEIGHBORS:
        return text[:pos] + rng.choice(_KEYBOARD_NEIGHBORS[ch]) + text[pos + 1 :]
    if roll < 0.85:
        return text[:pos] + text[pos] + text[pos:]  # doubled key
    return text[:pos] + text[pos + 1 :]             # dropped key


def ocr_confusion(rng: random.Random, text: str) -> str:
    """One OCR-style glyph confusion; falls back to a uniform edit when the
    string contains no confusable glyphs."""
    candidates = []
    for pattern, replacement in _OCR_CONFUSIONS.items():
        start = text.find(pattern)
        if start != -1:
            candidates.append((start, pattern, replacement))
    if not candidates:
        return _char_edit(rng, text)
    start, pattern, replacement = rng.choice(candidates)
    return text[:start] + replacement + text[start + len(pattern) :]


def _char_edit(rng: random.Random, text: str) -> str:
    """One random insert / delete / substitute at a random position."""
    if not text:
        return rng.choice(_ALPHABET)
    kind = rng.choice(("insert", "delete", "substitute"))
    pos = rng.randrange(len(text))
    if kind == "insert":
        return text[:pos] + rng.choice(_ALPHABET) + text[pos:]
    if kind == "delete":
        return text[:pos] + text[pos + 1 :]
    replacement = rng.choice(_ALPHABET)
    while replacement == text[pos]:
        replacement = rng.choice(_ALPHABET)
    return text[:pos] + replacement + text[pos + 1 :]


def _apply_abbreviation(rng: random.Random, tokens: List[str]) -> List[str]:
    """Swap one token between its long and short form if applicable."""
    candidates = []
    for i, token in enumerate(tokens):
        for long_form, short_form in _ABBREVIATIONS:
            if token == long_form:
                candidates.append((i, short_form))
            elif token == short_form:
                candidates.append((i, long_form))
    if not candidates:
        return tokens
    i, replacement = rng.choice(candidates)
    out = list(tokens)
    out[i] = replacement
    return out


def corrupt(
    text: str,
    rng: random.Random,
    config: Optional[CorruptionConfig] = None,
) -> str:
    """Return a corrupted near-duplicate of *text*.

    Guaranteed to differ from the input (a no-op draw falls back to one
    character edit) so planted duplicate pairs are genuine non-identical
    pairs.
    """
    cfg = config if config is not None else CorruptionConfig()
    tokens = text.split()

    if tokens and rng.random() < cfg.abbreviation_prob:
        tokens = _apply_abbreviation(rng, tokens)
    if len(tokens) > 2 and rng.random() < cfg.token_drop_prob:
        drop = rng.randrange(len(tokens))
        tokens = tokens[:drop] + tokens[drop + 1 :]
    if len(tokens) > 1 and rng.random() < cfg.token_swap_prob:
        i = rng.randrange(len(tokens) - 1)
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]

    editors = {
        "uniform": _char_edit,
        "keyboard": keyboard_typo,
        "ocr": ocr_confusion,
    }
    editor = editors.get(cfg.char_edit_style)
    if editor is None:
        raise ValueError(
            f"unknown char_edit_style {cfg.char_edit_style!r}; "
            f"expected one of {sorted(editors)}"
        )

    out = " ".join(tokens)
    if rng.random() < cfg.char_edit_prob:
        for _ in range(rng.randint(1, max(cfg.max_char_edits, 1))):
            out = editor(rng, out)

    if out == text:
        out = _char_edit(rng, out)
    return out
