"""Synthetic person records for the soft-FD join (Example 6).

Two author tables share an underlying population; corresponding records
agree on *most* of ``address``, ``email`` and ``phone`` — each attribute is
independently perturbed with a small probability — while names differ in
convention. This is the ≈k/h scenario: agreement on ⩾ 2 of the 3
FD sources identifies duplicates that name similarity would miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.data.rng import make_rng, zipf_choice
from repro.data.vocab import (
    CITIES,
    EMAIL_DOMAINS,
    FIRST_NAMES,
    LAST_NAMES,
    STREET_NAMES,
    STREET_SUFFIXES,
)
from repro.errors import DataGenerationError

__all__ = ["PersonConfig", "PersonData", "generate_persons"]


@dataclass(frozen=True)
class PersonConfig:
    num_persons: int = 100
    #: Per-attribute probability that table 2's copy disagrees with table 1.
    disagreement_prob: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_persons < 1:
            raise DataGenerationError(f"num_persons must be >= 1, got {self.num_persons}")
        if not 0.0 <= self.disagreement_prob < 1.0:
            raise DataGenerationError(
                f"disagreement_prob must be in [0, 1), got {self.disagreement_prob}"
            )


@dataclass
class PersonData:
    table1: List[Dict[str, str]]
    table2: List[Dict[str, str]]
    truth: Dict[str, str]  # table1 name -> table2 name


def _address(rng) -> str:
    return (
        f"{rng.randint(1, 999)} {zipf_choice(rng, STREET_NAMES, 1.0)} "
        f"{zipf_choice(rng, STREET_SUFFIXES, 0.8)} {zipf_choice(rng, CITIES, 1.0)}"
    )


def _phone(rng) -> str:
    return f"{rng.randint(200, 999)}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"


def generate_persons(config: PersonConfig = PersonConfig()) -> PersonData:
    """Build the two person tables with ground truth.

    >>> data = generate_persons(PersonConfig(num_persons=10, seed=3))
    >>> len(data.table1) == len(data.table2) == 10
    True
    """
    rng = make_rng(config.seed, "persons")
    table1: List[Dict[str, str]] = []
    table2: List[Dict[str, str]] = []
    truth: Dict[str, str] = {}
    used = set()

    for i in range(config.num_persons):
        while True:
            first = rng.choice(FIRST_NAMES)
            last = rng.choice(LAST_NAMES)
            if (first, last) not in used:
                used.add((first, last))
                break
        name1 = f"{last}, {first}"
        name2 = f"{first} {last}"
        truth[name1] = name2

        address = _address(rng)
        email = f"{first}.{last}{i}@{rng.choice(EMAIL_DOMAINS)}"
        phone = _phone(rng)
        table1.append(
            {"name": name1, "address": address, "email": email, "phone": phone}
        )

        # Table 2's copy disagrees per-attribute with small probability.
        record2 = {"name": name2, "address": address, "email": email, "phone": phone}
        if rng.random() < config.disagreement_prob:
            record2["address"] = _address(rng)
        if rng.random() < config.disagreement_prob:
            record2["email"] = f"{first[0]}{last}{i}@{rng.choice(EMAIL_DOMAINS)}"
        if rng.random() < config.disagreement_prob:
            record2["phone"] = _phone(rng)
        table2.append(record2)

    rng.shuffle(table1)
    rng.shuffle(table2)
    return PersonData(table1=table1, table2=table2, truth=truth)
