"""Synthetic Customer addresses — the stand-in for the paper's warehouse data.

The paper evaluates every similarity join on "a relation R of 25,000
customer addresses" joined with itself. This generator produces addresses
with the two characteristics the experiments depend on:

* **token-frequency skew** — street suffixes ("st", "ave"), directionals
  and state codes come from tiny vocabularies, so they are the
  high-frequency tokens that blow up the basic plan's equi-join, while
  street and city names follow a Zipf-like long tail;
* **a planted population of near-duplicate pairs** — a configurable
  fraction of rows are corrupted variants of earlier rows (typos,
  abbreviations, token drops), giving the join real output at high
  thresholds.

Everything is seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.data.corruptions import CorruptionConfig, corrupt
from repro.data.rng import make_rng, zipf_choice
from repro.data.vocab import (
    CITIES,
    FIRST_NAMES,
    LAST_NAMES,
    STATES,
    STREET_NAMES,
    STREET_SUFFIXES,
    UNIT_DESIGNATORS,
)
from repro.errors import DataGenerationError

__all__ = ["CustomerConfig", "generate_addresses", "generate_customers"]


@dataclass(frozen=True)
class CustomerConfig:
    """Shape of the generated Customer relation.

    ``duplicate_fraction`` of the rows are corrupted copies of earlier
    clean rows; the rest are independent addresses.
    """

    num_rows: int = 1000
    duplicate_fraction: float = 0.2
    seed: int = 20060403  # ICDE 2006 started April 3
    name_skew: float = 0.8
    corruption: CorruptionConfig = CorruptionConfig()

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise DataGenerationError(f"num_rows must be >= 1, got {self.num_rows}")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise DataGenerationError(
                f"duplicate_fraction must be in [0, 1), got {self.duplicate_fraction}"
            )


def _clean_address(rng) -> str:
    """One clean address line: number street suffix [unit] city state zip."""
    number = rng.randint(1, 9999)
    street = zipf_choice(rng, STREET_NAMES, skew=1.0)
    suffix = zipf_choice(rng, STREET_SUFFIXES, skew=0.8)
    city = zipf_choice(rng, CITIES, skew=1.0)
    state = zipf_choice(rng, STATES, skew=0.8)
    zipcode = rng.randint(10000, 99999)
    parts = [str(number), street, suffix]
    if rng.random() < 0.25:
        parts += [rng.choice(UNIT_DESIGNATORS), str(rng.randint(1, 400))]
    parts += [city, state, str(zipcode)]
    return " ".join(parts)


def generate_addresses(config: Optional[CustomerConfig] = None) -> List[str]:
    """Customer address strings per *config*; duplicates interleaved.

    >>> rows = generate_addresses(CustomerConfig(num_rows=100, seed=7))
    >>> len(rows)
    100
    >>> rows == generate_addresses(CustomerConfig(num_rows=100, seed=7))
    True
    """
    cfg = config if config is not None else CustomerConfig()
    rng = make_rng(cfg.seed, "customers")
    clean: List[str] = []
    rows: List[str] = []
    num_duplicates = int(cfg.num_rows * cfg.duplicate_fraction)
    num_clean = cfg.num_rows - num_duplicates

    for _ in range(num_clean):
        address = _clean_address(rng)
        clean.append(address)
        rows.append(address)
    for _ in range(num_duplicates):
        source = rng.choice(clean)
        rows.append(corrupt(source, rng, cfg.corruption))

    rng.shuffle(rows)
    return rows


def generate_customers(
    config: Optional[CustomerConfig] = None,
) -> List[Tuple[str, str]]:
    """``(customer_name, address)`` rows — for examples needing both.

    Names reuse the address duplication structure: a corrupted address row
    gets a (possibly corrupted) variant of its source row's name.
    """
    cfg = config if config is not None else CustomerConfig()
    rng = make_rng(cfg.seed, "customer-names")
    addresses = generate_addresses(cfg)
    out: List[Tuple[str, str]] = []
    for address in addresses:
        name = (
            f"{zipf_choice(rng, FIRST_NAMES, cfg.name_skew)} "
            f"{zipf_choice(rng, LAST_NAMES, cfg.name_skew)}"
        )
        out.append((name, address))
    return out
