"""Deterministic random-sampling helpers shared by the generators.

Every generator takes an integer seed and derives an isolated
``random.Random`` so that (a) runs are exactly reproducible and (b) changing
one generator's draw count never perturbs another's output.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

__all__ = ["make_rng", "zipf_choice"]

T = TypeVar("T")


def make_rng(seed: int, stream: str = "") -> random.Random:
    """A private RNG for (seed, stream).

    The stream label is hashed into the seed so independent generators fed
    the same user seed still draw independent sequences.
    """
    mixed = seed
    for ch in stream:
        mixed = (mixed * 1_000_003 + ord(ch)) % (2**63)
    return random.Random(mixed)


def zipf_choice(rng: random.Random, items: Sequence[T], skew: float = 1.0) -> T:
    """Draw from *items* with a Zipf-like rank distribution.

    Rank ``i`` (0-based) has weight ``1 / (i + 1)**skew``; skew 0 is
    uniform. Used to give street/city names the long-tailed popularity real
    address data shows.
    """
    if not items:
        raise ValueError("zipf_choice requires a non-empty sequence")
    if skew <= 0:
        return rng.choice(items)
    weights = [1.0 / (i + 1) ** skew for i in range(len(items))]
    total = sum(weights)
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if cumulative >= target:
            return item
    return items[-1]
