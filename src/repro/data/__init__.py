"""Synthetic dataset generators — deterministic stand-ins for the paper's
proprietary evaluation data (see DESIGN.md §2 for the substitution table).
"""

from repro.data.corruptions import CorruptionConfig, corrupt
from repro.data.customers import CustomerConfig, generate_addresses, generate_customers
from repro.data.persons import PersonConfig, PersonData, generate_persons
from repro.data.products import ProductConfig, ProductData, generate_products
from repro.data.publications import (
    PublicationConfig,
    PublicationData,
    generate_publications,
)
from repro.data.rng import make_rng, zipf_choice

__all__ = [
    "CorruptionConfig",
    "corrupt",
    "CustomerConfig",
    "generate_addresses",
    "generate_customers",
    "PersonConfig",
    "PersonData",
    "generate_persons",
    "ProductConfig",
    "ProductData",
    "generate_products",
    "PublicationConfig",
    "PublicationData",
    "generate_publications",
    "make_rng",
    "zipf_choice",
]
