"""Cosine similarity over weighted token vectors.

Cosine is among the similarity functions the introduction lists; custom join
algorithms for it exist ([8], [6]), and it too admits an overlap-style
reduction: if vectors are L2-normalized, ``cos(u, v) = Σ_t u_t·v_t``, a
weighted overlap. These helpers score strings and weighted sets and serve
as post-filter UDFs and test oracles.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Sequence

from repro.tokenize.weights import UnitWeights, WeightTable
from repro.tokenize.words import words

__all__ = ["cosine_vectors", "string_cosine"]


def cosine_vectors(u: Dict[Any, float], v: Dict[Any, float]) -> float:
    """Cosine of two sparse vectors (token -> weight).

    >>> cosine_vectors({"a": 1.0}, {"a": 1.0})
    1.0
    >>> cosine_vectors({"a": 1.0}, {"b": 1.0})
    0.0
    """
    nu = math.sqrt(sum(w * w for w in u.values()))
    nv = math.sqrt(sum(w * w for w in v.values()))
    if nu == 0.0 or nv == 0.0:
        return 1.0 if nu == nv else 0.0
    small, large = (u, v) if len(u) <= len(v) else (v, u)
    dot = sum(w * large.get(t, 0.0) for t, w in small.items())
    return dot / (nu * nv)


def _vector(
    text: str,
    tokenizer: Callable[[str], Sequence[str]],
    weights: WeightTable,
) -> Dict[str, float]:
    """tf·weight vector of a string (term frequency times token weight)."""
    vec: Dict[str, float] = {}
    for token in tokenizer(text):
        vec[token] = vec.get(token, 0.0) + weights.weight(token)
    return vec


def string_cosine(
    s1: str,
    s2: str,
    tokenizer: Callable[[str], Sequence[str]] = words,
    weights: Optional[WeightTable] = None,
) -> float:
    """Cosine similarity of two strings under tf·weight vectors.

    >>> round(string_cosine("microsoft corp", "microsoft corp"), 6)
    1.0
    """
    table = weights if weights is not None else UnitWeights()
    return cosine_vectors(_vector(s1, tokenizer, table), _vector(s2, tokenizer, table))
