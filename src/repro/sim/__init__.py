"""Similarity functions — the UDF post-filters composed with SSJoin.

Each function here is exactly the "check" stage of Figure 2: the SSJoin
operator produces a small candidate superset; these functions give the final
verdict. They double as brute-force oracles in the test suite.
"""

from repro.sim.cosine import cosine_vectors, string_cosine
from repro.sim.edit import (
    edit_distance,
    edit_distance_within,
    edit_similarity,
    edit_similarity_at_least,
)
from repro.sim.ges import ges, normalized_edit_distance, transformation_cost
from repro.sim.hamming import hamming_overlap_bound, set_hamming, string_hamming
from repro.sim.jaccard import (
    jaccard_containment,
    jaccard_resemblance,
    overlap,
    string_jaccard_containment,
    string_jaccard_resemblance,
    string_overlap,
)

__all__ = [
    "cosine_vectors",
    "string_cosine",
    "edit_distance",
    "edit_distance_within",
    "edit_similarity",
    "edit_similarity_at_least",
    "ges",
    "normalized_edit_distance",
    "transformation_cost",
    "hamming_overlap_bound",
    "set_hamming",
    "string_hamming",
    "jaccard_containment",
    "jaccard_resemblance",
    "overlap",
    "string_jaccard_containment",
    "string_jaccard_resemblance",
    "string_overlap",
]
