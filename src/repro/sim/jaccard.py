"""Set-overlap similarity scores on strings (Definitions 1 and 5).

These are thin conveniences binding a tokenizer + weight table to the
:class:`~repro.tokenize.sets.WeightedSet` algebra, so callers can score raw
strings directly. The SSJoin plans never call these on full cross products —
they exist as post-filter UDFs and as test oracles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import WeightTable, build_weighted_set
from repro.tokenize.words import words

__all__ = [
    "overlap",
    "jaccard_containment",
    "jaccard_resemblance",
    "string_overlap",
    "string_jaccard_containment",
    "string_jaccard_resemblance",
]

Tokenizer = Callable[[str], Sequence[Any]]


def overlap(s1: WeightedSet, s2: WeightedSet) -> float:
    """``Overlap(s1, s2) = wt(s1 ∩ s2)``."""
    return s1.overlap(s2)


def jaccard_containment(s1: WeightedSet, s2: WeightedSet) -> float:
    """``JC(s1, s2) = wt(s1 ∩ s2)/wt(s1)`` — containment of s1 in s2."""
    return s1.jaccard_containment(s2)


def jaccard_resemblance(s1: WeightedSet, s2: WeightedSet) -> float:
    """``JR(s1, s2) = wt(s1 ∩ s2)/wt(s1 ∪ s2)``."""
    return s1.jaccard_resemblance(s2)


def _as_set(
    text: str,
    tokenizer: Optional[Tokenizer],
    weights: Optional[WeightTable],
) -> WeightedSet:
    tokens = (tokenizer or words)(text)
    return build_weighted_set(tokens, weights=weights, multiset=True)


def string_overlap(
    t1: str,
    t2: str,
    tokenizer: Optional[Tokenizer] = None,
    weights: Optional[WeightTable] = None,
) -> float:
    """Overlap similarity between two strings (word tokens by default)."""
    return overlap(_as_set(t1, tokenizer, weights), _as_set(t2, tokenizer, weights))


def string_jaccard_containment(
    t1: str,
    t2: str,
    tokenizer: Optional[Tokenizer] = None,
    weights: Optional[WeightTable] = None,
) -> float:
    """Jaccard containment of *t1*'s token set in *t2*'s."""
    return jaccard_containment(_as_set(t1, tokenizer, weights), _as_set(t2, tokenizer, weights))


def string_jaccard_resemblance(
    t1: str,
    t2: str,
    tokenizer: Optional[Tokenizer] = None,
    weights: Optional[WeightTable] = None,
) -> float:
    """Jaccard resemblance between the token sets of two strings.

    >>> string_jaccard_resemblance("microsoft corp", "microsoft corp")
    1.0
    """
    return jaccard_resemblance(_as_set(t1, tokenizer, weights), _as_set(t2, tokenizer, weights))
