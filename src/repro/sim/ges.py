"""Generalized edit similarity (GES) — paper Definition 6, from [4].

Strings are token sequences. Transforming token ``t1`` into ``t2`` costs
``ed(t1, t2) · wt(t1)`` where ``ed`` is length-normalized edit distance;
inserting or deleting token ``t`` costs ``wt(t)``. ``tc(σ1, σ2)`` is the
minimum-cost transformation of σ1's token sequence into σ2's, and

    GES(σ1, σ2) = 1 − min( tc(σ1, σ2) / wt(Set(σ1)), 1 ).

Note GES is asymmetric (normalized by σ1's weight), exactly as defined.
The transformation cost is computed by a token-level sequence-alignment DP.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.sim.edit import edit_distance
from repro.tokenize.weights import UnitWeights, WeightTable
from repro.tokenize.words import words

__all__ = ["normalized_edit_distance", "transformation_cost", "ges"]


def normalized_edit_distance(t1: str, t2: str) -> float:
    """``ed(σ1, σ2) = ED(σ1, σ2)/max(|σ1|, |σ2|)`` ∈ [0, 1]."""
    longest = max(len(t1), len(t2))
    if longest == 0:
        return 0.0
    return edit_distance(t1, t2) / longest


def transformation_cost(
    tokens1: Sequence[str],
    tokens2: Sequence[str],
    weights: Optional[WeightTable] = None,
) -> float:
    """Minimum cost of transforming token sequence 1 into sequence 2.

    Weighted sequence alignment: replace ``t1 → t2`` costs
    ``ed(t1,t2)·wt(t1)``; delete ``t1`` costs ``wt(t1)``; insert ``t2``
    costs ``wt(t2)``.

    >>> transformation_cost(["microsoft", "corp"], ["microsoft", "corp"])
    0.0
    """
    table = weights if weights is not None else UnitWeights()
    w1 = [table.weight(t) for t in tokens1]
    w2 = [table.weight(t) for t in tokens2]
    n, m = len(tokens1), len(tokens2)

    # previous[j]: cost of transforming tokens1[:i-1] into tokens2[:j].
    previous: List[float] = [0.0] * (m + 1)
    for j in range(1, m + 1):
        previous[j] = previous[j - 1] + w2[j - 1]  # insert tokens2[:j]
    for i in range(1, n + 1):
        current = [previous[0] + w1[i - 1]]  # delete tokens1[:i]
        t1 = tokens1[i - 1]
        wt1 = w1[i - 1]
        for j in range(1, m + 1):
            replace = previous[j - 1] + normalized_edit_distance(t1, tokens2[j - 1]) * wt1
            delete = previous[j] + wt1
            insert = current[j - 1] + w2[j - 1]
            current.append(min(replace, delete, insert))
        previous = current
    return previous[m]


def ges(
    s1: str,
    s2: str,
    weights: Optional[WeightTable] = None,
    tokenizer: Callable[[str], Sequence[str]] = words,
) -> float:
    """Generalized edit similarity of *s1* toward *s2* (Definition 6).

    >>> round(ges("microsoft corp", "microsoft corp"), 6)
    1.0
    >>> ges("", "anything")
    0.0
    """
    tokens1 = list(tokenizer(s1))
    tokens2 = list(tokenizer(s2))
    table = weights if weights is not None else UnitWeights()
    total = sum(table.weight(t) for t in tokens1)
    if total == 0.0:
        # An empty source set: identical only to another empty string.
        return 1.0 if not tokens2 else 0.0
    cost = transformation_cost(tokens1, tokens2, weights=table)
    return 1.0 - min(cost / total, 1.0)
