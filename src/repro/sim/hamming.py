"""Hamming distance — on equal-length strings and on sets.

The paper lists hamming distance among the similarity functions SSJoin
supports. Two standard readings are provided:

* string hamming distance (positions that differ, equal lengths required);
* set hamming distance (symmetric-difference weight), which reduces to an
  overlap predicate: ``HD(s1, s2) = wt(s1) + wt(s2) − 2·Overlap(s1, s2)``,
  so ``HD ≤ k  ⇔  Overlap ≥ (wt(s1)+wt(s2)−k)/2`` — the reduction used by
  :mod:`repro.joins.hamming_join`.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.tokenize.sets import WeightedSet

__all__ = ["string_hamming", "set_hamming", "hamming_overlap_bound"]


def string_hamming(s1: str, s2: str) -> int:
    """Number of positions at which two equal-length strings differ.

    >>> string_hamming("karolin", "kathrin")
    3
    """
    if len(s1) != len(s2):
        raise ReproError(
            f"string hamming distance requires equal lengths, got {len(s1)} and {len(s2)}"
        )
    return sum(1 for a, b in zip(s1, s2) if a != b)


def set_hamming(s1: WeightedSet, s2: WeightedSet) -> float:
    """Weight of the symmetric difference of two weighted sets.

    >>> a = WeightedSet({"x": 1.0, "y": 1.0})
    >>> b = WeightedSet({"y": 1.0, "z": 1.0})
    >>> set_hamming(a, b)
    2.0
    """
    return s1.norm + s2.norm - 2.0 * s1.overlap(s2)


def hamming_overlap_bound(norm1: float, norm2: float, k: float) -> float:
    """The overlap threshold equivalent to ``set_hamming ≤ k``.

    ``HD(s1,s2) ≤ k  ⇔  Overlap(s1,s2) ≥ (wt(s1) + wt(s2) − k)/2``.
    """
    return (norm1 + norm2 - k) / 2.0
