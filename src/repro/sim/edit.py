"""Edit distance and edit similarity (paper Definition 2).

``ED(σ1, σ2)`` is the classic Levenshtein distance with unit-cost insert,
delete and substitute. ``ES(σ1, σ2) = 1 − ED/max(|σ1|, |σ2|)``.

Two implementations are provided:

* :func:`edit_distance` — full O(|σ1|·|σ2|) dynamic program, two-row memory.
* :func:`edit_distance_within` — Ukkonen-banded DP that answers
  "is ED ≤ k?" in O(k·min(len)) time with early exit; this is the UDF the
  similarity-join post-filter actually calls, since the SSJoin candidate
  verification only ever needs a thresholded answer.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["edit_distance", "edit_distance_within", "edit_similarity", "edit_similarity_at_least"]


def edit_distance(s1: str, s2: str) -> int:
    """Levenshtein distance between *s1* and *s2*.

    >>> edit_distance("microsoft", "mcrosoft")
    1
    >>> edit_distance("", "abc")
    3
    """
    if s1 == s2:
        return 0
    # Keep s2 as the shorter string so the DP rows are minimal.
    if len(s2) > len(s1):
        s1, s2 = s2, s1
    if not s2:
        return len(s1)

    previous = list(range(len(s2) + 1))
    for i, c1 in enumerate(s1, start=1):
        current = [i]
        for j, c2 in enumerate(s2, start=1):
            cost = 0 if c1 == c2 else 1
            current.append(
                min(
                    previous[j] + 1,       # delete from s1
                    current[j - 1] + 1,    # insert into s1
                    previous[j - 1] + cost # substitute
                )
            )
        previous = current
    return previous[-1]


def edit_distance_within(s1: str, s2: str, k: int) -> Optional[int]:
    """Return ``ED(s1, s2)`` if it is ≤ *k*, else ``None``.

    Banded DP: only the diagonal band of width ``2k+1`` is evaluated, and
    the scan aborts as soon as every band cell exceeds *k*. For the high
    thresholds typical of similarity joins (k small relative to length)
    this is far cheaper than the full table.

    >>> edit_distance_within("microsoft corp", "mcrosoft corp", 2)
    1
    >>> edit_distance_within("abcdef", "uvwxyz", 2) is None
    True
    """
    if k < 0:
        return None
    if s1 == s2:
        return 0
    if abs(len(s1) - len(s2)) > k:
        return None
    if len(s2) > len(s1):
        s1, s2 = s2, s1
    n, m = len(s1), len(s2)
    if m == 0:
        return n if n <= k else None

    big = k + 1  # any value > k acts as "infinity" inside the band
    previous = [j if j <= k else big for j in range(m + 1)]
    for i in range(1, n + 1):
        lo = max(1, i - k)
        hi = min(m, i + k)
        current = [big] * (m + 1)
        if i <= k:
            current[0] = i
        c1 = s1[i - 1]
        best = big
        for j in range(lo, hi + 1):
            cost = 0 if c1 == s2[j - 1] else 1
            value = previous[j - 1] + cost
            if previous[j] + 1 < value:
                value = previous[j] + 1
            if current[j - 1] + 1 < value:
                value = current[j - 1] + 1
            if value > big:
                value = big
            current[j] = value
            if value < best:
                best = value
        if best > k:
            return None
        previous = current
    return previous[m] if previous[m] <= k else None


def edit_similarity(s1: str, s2: str) -> float:
    """``ES = 1 − ED(σ1,σ2)/max(|σ1|,|σ2|)`` (Definition 2).

    Two empty strings are conventionally identical (similarity 1.0).

    >>> edit_similarity("microsoft", "mcrosoft")
    0.8888888888888888
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(s1, s2) / longest


def edit_similarity_at_least(s1: str, s2: str, threshold: float) -> bool:
    """Thresholded edit similarity using the banded early-exit DP.

    ``ES ≥ θ  ⇔  ED ≤ (1 − θ)·max(len)``; the bound is floored to an
    integer edit budget.
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return True
    budget = int((1.0 - threshold) * longest + 1e-9)
    return edit_distance_within(s1, s2, budget) is not None
