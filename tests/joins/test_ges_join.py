"""GES join: expansion machinery + completeness vs the oracle on realistic data."""

import pytest

from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.joins.direct import direct_join
from repro.joins.ges_join import expand_tokens, ges_join
from repro.sim.ges import ges
from repro.tokenize.weights import IDFWeights
from repro.tokenize.words import words

COMPANIES = [
    "microsoft corp",
    "microsft corp",
    "microsoft corporation",
    "oracle systems",
    "oracle sytems",
    "ibm global services",
    "ibm global service",
]


class TestExpandTokens:
    def test_source_tokens_always_included(self):
        out = expand_tokens(["microsoft"], ["oracle"], beta=0.9)
        assert out["microsoft"] == "microsoft"

    def test_close_dictionary_token_added(self):
        out = expand_tokens(["microsoft"], ["microsft", "oracle"], beta=0.8)
        assert out["microsft"] == "microsoft"
        assert "oracle" not in out

    def test_length_filter_prunes(self):
        out = expand_tokens(["ab"], ["abcdefghij"], beta=0.8)
        assert "abcdefghij" not in out


class TestGESJoin:
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle_unweighted(self, implementation):
        res = ges_join(COMPANIES, threshold=0.8, weights=None,
                       implementation=implementation)
        oracle = direct_join(COMPANIES, similarity=ges, threshold=0.8, symmetric=False)
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_idf_weighted(self):
        table = IDFWeights.fit([words(v) for v in COMPANIES] * 2)
        res = ges_join(COMPANIES, threshold=0.8, weights=table)
        oracle = direct_join(
            COMPANIES,
            similarity=lambda a, b: ges(a, b, weights=table),
            threshold=0.8,
            symmetric=False,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_on_generated_addresses(self):
        rows = generate_addresses(CustomerConfig(num_rows=80, seed=13))
        res = ges_join(rows, threshold=0.85, weights=None)
        oracle = direct_join(rows, similarity=ges, threshold=0.85, symmetric=False)
        assert res.pair_set() == oracle.pair_set()

    def test_paper_motivating_example(self):
        """Sec 3.3: 'microsoft corp' ~ 'microsft corporation' under GES with
        low-weight corp/corporation tokens."""
        strings = ["microsoft corp", "microsft corporation", "mic corp"]
        from repro.tokenize.weights import TableWeights

        table = TableWeights(
            {"microsoft": 1.0, "microsft": 1.0, "mic": 1.0,
             "corp": 0.15, "corporation": 0.15},
            default=1.0,
        )
        res = ges_join(strings, threshold=0.75, weights=table)
        assert ("microsoft corp", "microsft corporation") in res.pair_set()
        assert ("microsoft corp", "mic corp") not in res.pair_set()

    def test_asymmetry_preserved(self):
        # GES normalizes by the left string's weight: direction matters.
        # ges(b -> a) = 1 - 1/6 ~ 0.833 (delete one of six unit tokens);
        # ges(a -> b) = 1 - 1/5 = 0.8 (insert one token, five-token norm).
        a = "microsoft corp alpha beta gamma"
        b = "microsoft corp alpha beta gamma delta"
        res = ges_join([a, b], threshold=0.82, weights=None)
        assert (b, a) in res.pair_set()
        assert (a, b) not in res.pair_set()

    def test_bad_parameters(self):
        with pytest.raises(PredicateError):
            ges_join(COMPANIES, threshold=0.0)
        with pytest.raises(PredicateError):
            ges_join(COMPANIES, threshold=0.8, beta=0.9)  # beta >= threshold

    def test_reported_similarity_is_exact_ges(self):
        res = ges_join(["microsoft corp", "microsft corp"], threshold=0.8, weights=None)
        for p in res.pairs:
            assert p.similarity == pytest.approx(ges(p.left, p.right))

    def test_two_relation_join(self):
        res = ges_join(["microsoft corp"], ["microsft corp", "oracle"], threshold=0.8,
                       weights=None)
        assert res.pair_set() == {("microsoft corp", "microsft corp")}
