"""Jaccard joins vs oracles, weighted and unweighted."""

import pytest

from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.joins.direct import direct_join
from repro.joins.jaccard_join import (
    jaccard_containment_join,
    jaccard_resemblance_join,
    resolve_weights,
)
from repro.sim.jaccard import string_jaccard_containment, string_jaccard_resemblance
from repro.tokenize.weights import IDFWeights, TableWeights, UnitWeights
from repro.tokenize.words import words

STRINGS = [
    "microsoft corp redmond wa",
    "microsoft corp redmond",
    "microsoft corporation redmond wa",
    "oracle corp redwood ca",
    "oracle corp redwood shores ca",
    "the the repeated tokens the",
    "the the repeated tokens",
    "solo",
]


class TestContainmentJoin:
    @pytest.mark.parametrize("threshold", [0.5, 0.75, 0.9, 1.0])
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle_unweighted(self, threshold, implementation):
        res = jaccard_containment_join(
            STRINGS, threshold=threshold, weights=None, implementation=implementation
        )
        oracle = direct_join(
            STRINGS,
            similarity=string_jaccard_containment,
            threshold=threshold,
            symmetric=False,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_idf_weighted(self):
        table = IDFWeights.fit([words(v) for v in STRINGS] * 2)
        res = jaccard_containment_join(STRINGS, threshold=0.8, weights=table)
        oracle = direct_join(
            STRINGS,
            similarity=lambda a, b: string_jaccard_containment(a, b, weights=table),
            threshold=0.8,
            symmetric=False,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_asymmetric_direction(self):
        # 'microsoft corp redmond' fully contained in the longer variant.
        res = jaccard_containment_join(
            ["microsoft corp redmond", "microsoft corp redmond wa"],
            threshold=1.0,
            weights=None,
        )
        assert ("microsoft corp redmond", "microsoft corp redmond wa") in res.pair_set()
        assert (
            "microsoft corp redmond wa",
            "microsoft corp redmond",
        ) not in res.pair_set()

    def test_similarity_column_exact(self):
        res = jaccard_containment_join(STRINGS, threshold=0.5, weights=None)
        for pair in res.pairs:
            assert pair.similarity == pytest.approx(
                string_jaccard_containment(pair.left, pair.right)
            )

    def test_two_relation_join(self):
        left = ["a b c"]
        right = ["a b c d", "x y"]
        res = jaccard_containment_join(left, right, threshold=0.9, weights=None)
        assert res.pair_set() == {("a b c", "a b c d")}

    def test_bad_threshold(self):
        with pytest.raises(PredicateError):
            jaccard_containment_join(STRINGS, threshold=1.5)

    def test_bad_weights_spec(self):
        with pytest.raises(PredicateError):
            jaccard_containment_join(STRINGS, weights="tfidf-pro")


class TestResemblanceJoin:
    @pytest.mark.parametrize("threshold", [0.4, 0.6, 0.8, 0.95])
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle_unweighted(self, threshold, implementation):
        res = jaccard_resemblance_join(
            STRINGS, threshold=threshold, weights=None, implementation=implementation
        )
        oracle = direct_join(
            STRINGS, similarity=string_jaccard_resemblance, threshold=threshold
        )
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_on_generated_addresses(self):
        rows = generate_addresses(CustomerConfig(num_rows=150, seed=5))
        res = jaccard_resemblance_join(rows, threshold=0.75, weights=None)
        oracle = direct_join(
            rows, similarity=string_jaccard_resemblance, threshold=0.75
        )
        assert res.pair_set() == oracle.pair_set()

    def test_idf_weighted_matches_weighted_oracle(self):
        table = IDFWeights.fit([words(v) for v in STRINGS] * 2)
        res = jaccard_resemblance_join(STRINGS, threshold=0.7, weights=table)
        oracle = direct_join(
            STRINGS,
            similarity=lambda a, b: string_jaccard_resemblance(a, b, weights=table),
            threshold=0.7,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_multiset_tokens_respected(self):
        # 'the the repeated tokens the' vs 'the the repeated tokens':
        # multiset resemblance = 4/5.
        res = jaccard_resemblance_join(
            ["the the repeated tokens the", "the the repeated tokens"],
            threshold=0.8,
            weights=None,
        )
        assert len(res) == 1
        assert res.pairs[0].similarity == pytest.approx(0.8)

    def test_symmetric_canonicalization(self):
        res = jaccard_resemblance_join(["a b", "b a"], threshold=0.9, weights=None)
        assert len(res) == 1  # one unordered pair, not two


class TestResolveWeights:
    def test_none_passthrough(self):
        assert resolve_weights(None, words, [], []) is None

    def test_table_passthrough(self):
        t = UnitWeights()
        assert resolve_weights(t, words, [], []) is t

    def test_idf_fits_both_sides(self):
        t = resolve_weights("idf", words, ["a b"], ["a c"])
        assert isinstance(t, IDFWeights)
        assert t.num_documents == 2
        assert t.document_frequency["a"] == 2
