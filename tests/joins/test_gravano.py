"""The customized edit join [9] must agree with the oracle — and do more
UDF work than the SSJoin plan (Table 1's headline fact)."""

import pytest

from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.joins.direct import direct_join
from repro.joins.edit_join import edit_similarity_join
from repro.joins.gravano import gravano_edit_join
from repro.sim.edit import edit_distance, edit_similarity

NAMES = [
    "microsoft corporation",
    "microsoft corp",
    "mcrosoft corp",
    "oracle corp",
    "oracle corporation",
    "ibm",
    "ibn",
    "ab",
    "intl business machines",
]


class TestCorrectness:
    @pytest.mark.parametrize("threshold", [0.7, 0.8, 0.85, 0.9, 0.95])
    def test_similarity_form_matches_oracle(self, threshold):
        res = gravano_edit_join(NAMES, threshold=threshold)
        oracle = direct_join(NAMES, similarity=edit_similarity, threshold=threshold)
        assert res.pair_set() == oracle.pair_set()

    @pytest.mark.parametrize("epsilon", [0, 1, 2])
    def test_distance_form_matches_oracle(self, epsilon):
        res = gravano_edit_join(NAMES, epsilon=epsilon)
        distinct = list(dict.fromkeys(NAMES))
        expected = set()
        for i, a in enumerate(distinct):
            for b in distinct[i + 1 :]:
                if edit_distance(a, b) <= epsilon:
                    expected.add((a, b) if repr(a) <= repr(b) else (b, a))
        assert res.pair_set() == expected

    def test_generated_addresses(self):
        rows = generate_addresses(CustomerConfig(num_rows=100, seed=17))
        res = gravano_edit_join(rows, threshold=0.85)
        oracle = direct_join(rows, similarity=edit_similarity, threshold=0.85)
        assert res.pair_set() == oracle.pair_set()

    def test_two_relation_form(self):
        res = gravano_edit_join(["microsoft"], ["mcrosoft", "oracle"], threshold=0.85)
        assert res.pair_set() == {("microsoft", "mcrosoft")}

    def test_agrees_with_ssjoin_based_join(self):
        rows = generate_addresses(CustomerConfig(num_rows=80, seed=23))
        custom = gravano_edit_join(rows, threshold=0.85)
        via_ssjoin = edit_similarity_join(rows, threshold=0.85)
        assert custom.pair_set() == via_ssjoin.pair_set()


class TestTable1Shape:
    def test_custom_does_more_udf_work_than_ssjoin(self):
        """The reproduction of Table 1's qualitative claim: the customized
        plan's position/length filters are weaker than the overlap
        predicate, so it verifies many more candidates."""
        rows = generate_addresses(CustomerConfig(num_rows=200, seed=29))
        custom = gravano_edit_join(rows, threshold=0.85)
        via_ssjoin = edit_similarity_join(rows, threshold=0.85, implementation="inline")
        assert custom.pair_set() == via_ssjoin.pair_set()
        assert (
            custom.metrics.similarity_comparisons
            > via_ssjoin.metrics.similarity_comparisons
        )


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(PredicateError):
            gravano_edit_join(NAMES, threshold=1.5)

    def test_bad_epsilon(self):
        with pytest.raises(PredicateError):
            gravano_edit_join(NAMES, epsilon=-1)

    def test_implementation_is_fixed(self):
        with pytest.raises(PredicateError):
            gravano_edit_join(NAMES, implementation="prefix")
