"""Edit joins vs the brute-force oracle, on handcrafted and generated data."""

import pytest

from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.joins.direct import direct_join
from repro.joins.edit_join import edit_distance_join, edit_similarity_join
from repro.sim.edit import edit_distance, edit_similarity

NAMES = [
    "microsoft corporation",
    "microsoft corp",
    "mcrosoft corp",
    "oracle corp",
    "oracle corporation",
    "ibm",
    "ibn",
    "x",
    "xy",
    "intl business machines",
]


class TestEditSimilarityJoin:
    @pytest.mark.parametrize("threshold", [0.7, 0.8, 0.85, 0.9, 0.95])
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle_self_join(self, threshold, implementation):
        res = edit_similarity_join(NAMES, threshold=threshold, implementation=implementation)
        oracle = direct_join(NAMES, similarity=edit_similarity, threshold=threshold)
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_two_relations(self):
        left = NAMES[:5]
        right = NAMES[3:]
        res = edit_similarity_join(left, right, threshold=0.8)
        oracle = direct_join(left, right, similarity=edit_similarity, threshold=0.8,
                             symmetric=False)
        # oracle drops identity pairs only on self-joins; R-S joins keep them
        expected = {
            (a, b)
            for a in dict.fromkeys(left)
            for b in dict.fromkeys(right)
            if edit_similarity(a, b) >= 0.8
        }
        assert res.pair_set() == expected

    def test_generated_addresses_match_oracle(self):
        rows = generate_addresses(CustomerConfig(num_rows=120, seed=11))
        res = edit_similarity_join(rows, threshold=0.85)
        oracle = direct_join(rows, similarity=edit_similarity, threshold=0.85)
        assert res.pair_set() == oracle.pair_set()
        assert len(res) > 0  # planted duplicates must surface

    def test_short_strings_handled(self):
        """Degenerate pairs (threshold bound non-positive, possibly no
        shared q-gram) must still appear via the short-string path."""
        values = ["ab", "abc", "abcdefgh"]
        res = edit_similarity_join(values, threshold=0.6, q=2)
        oracle = direct_join(values, similarity=edit_similarity, threshold=0.6)
        assert res.pair_set() == oracle.pair_set()
        assert ("ab", "abc") in res.pair_set()

    def test_threshold_too_low_for_q_rejected(self):
        with pytest.raises(PredicateError):
            edit_similarity_join(NAMES, threshold=0.5, q=3)

    def test_threshold_out_of_range(self):
        with pytest.raises(PredicateError):
            edit_similarity_join(NAMES, threshold=0.0)

    def test_similarity_scores_reported(self):
        res = edit_similarity_join(["microsoft", "mcrosoft"], threshold=0.8)
        (pair,) = res.pairs
        assert pair.similarity == pytest.approx(edit_similarity("microsoft", "mcrosoft"))

    def test_udf_calls_counted(self):
        res = edit_similarity_join(NAMES, threshold=0.85)
        assert res.metrics.similarity_comparisons >= len(res.pairs)


class TestEditDistanceJoin:
    @pytest.mark.parametrize("epsilon", [0, 1, 2, 3])
    def test_matches_oracle(self, epsilon):
        res = edit_distance_join(NAMES, epsilon=epsilon)
        expected = set()
        distinct = list(dict.fromkeys(NAMES))
        for i, a in enumerate(distinct):
            for b in distinct[i + 1 :]:
                if edit_distance(a, b) <= epsilon:
                    expected.add((a, b) if repr(a) <= repr(b) else (b, a))
        assert res.pair_set() == expected

    def test_epsilon_zero_finds_nothing_on_distinct_inputs(self):
        res = edit_distance_join(["abc", "abd"], epsilon=0)
        assert len(res) == 0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(PredicateError):
            edit_distance_join(NAMES, epsilon=-1)

    def test_two_relation_form(self):
        res = edit_distance_join(["abc"], ["abd", "zzz"], epsilon=1)
        assert res.pair_set() == {("abc", "abd")}

    def test_duplicate_inputs_collapse(self):
        res = edit_distance_join(["abc", "abc", "abd"], epsilon=1)
        assert res.pair_set() == {("abc", "abd")}
