"""Hamming, soundex and direct joins vs oracles."""

import pytest

from repro.errors import PredicateError
from repro.joins.direct import direct_join
from repro.joins.hamming_join import set_hamming_join, string_hamming_join
from repro.joins.soundex_join import soundex_join
from repro.sim.edit import edit_similarity
from repro.sim.hamming import string_hamming
from repro.tokenize.soundex import soundex


class TestStringHammingJoin:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle(self, k, implementation):
        values = ["karolin", "kathrin", "karlott", "kerstin", "short", "carol"]
        res = string_hamming_join(values, k=k, implementation=implementation)
        expected = set()
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                if len(a) == len(b) and string_hamming(a, b) <= k:
                    expected.add((a, b) if repr(a) <= repr(b) else (b, a))
        assert res.pair_set() == expected

    def test_cross_length_pairs_excluded(self):
        res = string_hamming_join(["abcd", "abcde"], k=5)
        assert len(res) == 0

    def test_negative_k_rejected(self):
        with pytest.raises(PredicateError):
            string_hamming_join(["ab"], k=-1)

    def test_similarity_score(self):
        res = string_hamming_join(["karolin", "kathrin"], k=3)
        assert res.pairs[0].similarity == pytest.approx(1 - 3 / 7)


class TestSetHammingJoin:
    def test_exact_reduction(self):
        values = ["a b c", "a b d", "a x y", "p q"]
        res = set_hamming_join(values, k=2)
        assert res.pair_set() == {("a b c", "a b d")}

    def test_k_zero_means_identical_sets(self):
        res = set_hamming_join(["a b", "b a", "a c"], k=0)
        assert res.pair_set() == {("a b", "b a")}

    def test_two_relation(self):
        res = set_hamming_join(["a b c"], ["a b z", "zzz"], k=2)
        assert res.pair_set() == {("a b c", "a b z")}


class TestSoundexJoin:
    def test_classic_pairs(self):
        res = soundex_join(["Robert", "Rupert", "Ashcraft", "Ashcroft"])
        assert res.pair_set() == {("Ashcraft", "Ashcroft"), ("Robert", "Rupert")}

    def test_matches_code_equality_oracle(self):
        names = ["Smith", "Smyth", "Johnson", "Jonson", "Miller", "Muller", "X"]
        res = soundex_join(names)
        expected = set()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if soundex(a) == soundex(b) and soundex(a):
                    expected.add((a, b) if repr(a) <= repr(b) else (b, a))
        assert res.pair_set() == expected

    def test_unpronounceable_strings_never_join(self):
        res = soundex_join(["123", "456"])
        assert len(res) == 0

    def test_two_relation(self):
        res = soundex_join(["Robert"], ["Rupert", "Oracle"])
        assert res.pair_set() == {("Robert", "Rupert")}


class TestDirectJoin:
    def test_requires_similarity(self):
        with pytest.raises(TypeError):
            direct_join(["a"], threshold=0.5)

    def test_self_join_counts_each_unordered_pair_once(self):
        res = direct_join(["a", "b", "c"], similarity=lambda x, y: 1.0, threshold=0.5)
        assert res.metrics.similarity_comparisons == 3
        assert len(res) == 3

    def test_asymmetric_mode_counts_both_directions(self):
        res = direct_join(
            ["a", "b"], similarity=lambda x, y: 1.0, threshold=0.5, symmetric=False
        )
        assert res.metrics.similarity_comparisons == 2

    def test_two_relation_mode(self):
        res = direct_join(["abc"], ["abd", "zzz"], similarity=edit_similarity,
                          threshold=0.6)
        assert res.pair_set() == {("abc", "abd")}

    def test_duplicates_deduplicated(self):
        res = direct_join(["a", "a", "b"], similarity=lambda x, y: 1.0, threshold=0.5)
        assert res.metrics.similarity_comparisons == 1


class TestOverlapJoin:
    def test_absolute_overlap(self):
        from repro.joins.overlap_join import overlap_join

        res = overlap_join(["a b c", "a b x", "p q"], alpha=2.0)
        assert res.pair_set() == {("a b c", "a b x")}
        assert res.pairs[0].similarity == pytest.approx(2.0)

    def test_multiset_overlap_counts_copies(self):
        from repro.joins.overlap_join import overlap_join

        res = overlap_join(["the the cat", "the the dog"], alpha=2.0)
        assert len(res) == 1  # both 'the' copies count

    def test_weighted_overlap(self):
        from repro.joins.overlap_join import overlap_join
        from repro.tokenize.weights import TableWeights

        table = TableWeights({"rare": 5.0}, default=1.0)
        res = overlap_join(["rare x", "rare y"], alpha=4.0, weights=table)
        assert res.pair_set() == {("rare x", "rare y")}

    def test_two_relation(self):
        from repro.joins.overlap_join import overlap_join

        res = overlap_join(["a b"], ["b c", "a b z"], alpha=2.0)
        assert res.pair_set() == {("a b", "a b z")}

    @pytest.mark.parametrize("impl", ["basic", "prefix", "inline", "probe"])
    def test_implementations_agree(self, impl):
        from repro.joins.overlap_join import overlap_join

        values = ["a b c d", "a b c x", "a y z", "q r"]
        res = overlap_join(values, alpha=3.0, implementation=impl)
        assert res.pair_set() == {("a b c d", "a b c x")}
