"""Co-occurrence, soft-FD and top-k joins (Section 3.4 / Section 6)."""

import pytest

from repro.data.persons import PersonConfig, generate_persons
from repro.data.publications import PublicationConfig, generate_publications
from repro.errors import PredicateError
from repro.joins.cooccurrence import cooccurrence_join
from repro.joins.fd_join import fd_agreement_join
from repro.joins.topk import topk_matches
from repro.sim.edit import edit_similarity


class TestCooccurrenceJoin:
    def test_example_5_shape(self):
        r = [("a. gupta", "p1"), ("a. gupta", "p2"), ("a. gupta", "p3")]
        s = [("anil gupta", "p1"), ("anil gupta", "p2"), ("anil gupta", "p3"),
             ("bob", "q1")]
        res = cooccurrence_join(r, s, threshold=0.9, weights=None)
        assert res.pair_set() == {("a. gupta", "anil gupta")}

    def test_recovers_ground_truth_on_generated_data(self):
        data = generate_publications(PublicationConfig(num_authors=30, seed=3))
        res = cooccurrence_join(
            data.source2, data.source1, threshold=0.9, weights=None
        )
        # Every source2 author's titles are a subset of its source1 twin's.
        found = {(a, b) for a, b in res.pair_set()}
        expected = {(full, abbrev) for abbrev, full in data.truth.items()}
        assert expected <= found
        # Precision: generated titles are distinctive enough to be exact.
        assert found == expected

    def test_idf_weights_supported(self):
        r = [("x", "p1"), ("x", "p2"), ("y", "p2")]
        res = cooccurrence_join(r, threshold=0.4, weights="idf")
        assert isinstance(res.pair_set(), set)

    def test_self_join_drops_identity(self):
        r = [("x", "p1"), ("y", "p1")]
        res = cooccurrence_join(r, threshold=0.9, weights=None)
        assert ("x", "x") not in res.pair_set()
        # containment is asymmetric: both directions appear
        assert ("x", "y") in res.pair_set() and ("y", "x") in res.pair_set()

    def test_bad_threshold(self):
        with pytest.raises(PredicateError):
            cooccurrence_join([("a", "b")], threshold=0.0)

    def test_bad_weights(self):
        with pytest.raises(PredicateError):
            cooccurrence_join([("a", "b")], weights="bogus")


class TestFDJoin:
    def test_example_6(self):
        a1 = [{"name": "j. smith", "address": "1 main", "email": "js@x.com",
               "phone": "555"}]
        a2 = [{"name": "john smith", "address": "1 main", "email": "js@x.com",
               "phone": "999"},
              {"name": "jane smythe", "address": "9 oak", "email": "j@y.com",
               "phone": "555"}]
        res = fd_agreement_join(a1, a2, key="name",
                                attributes=("address", "email", "phone"), k=2)
        assert res.pair_set() == {("j. smith", "john smith")}

    def test_oracle_equivalence(self):
        data = generate_persons(PersonConfig(num_persons=40, seed=9))
        res = fd_agreement_join(data.table1, data.table2, k=2)
        expected = set()
        for r1 in data.table1:
            for r2 in data.table2:
                agreements = sum(
                    1
                    for c in ("address", "email", "phone")
                    if r1[c] is not None and r1[c] == r2[c]
                )
                if agreements >= 2:
                    expected.add((r1["name"], r2["name"]))
        assert res.pair_set() == expected

    def test_similarity_is_agreement_fraction(self):
        a1 = [{"name": "a", "address": "x", "email": "e", "phone": "p"}]
        a2 = [{"name": "b", "address": "x", "email": "e", "phone": "q"}]
        res = fd_agreement_join(a1, a2, k=2)
        assert res.pairs[0].similarity == pytest.approx(2 / 3)

    def test_none_values_never_agree(self):
        a1 = [{"name": "a", "address": None, "email": None, "phone": "p"}]
        a2 = [{"name": "b", "address": None, "email": None, "phone": "p"}]
        res = fd_agreement_join(a1, a2, k=2)
        assert len(res) == 0

    def test_self_join_unordered(self):
        recs = [
            {"name": "a", "address": "x", "email": "e", "phone": "p"},
            {"name": "b", "address": "x", "email": "e", "phone": "p"},
        ]
        res = fd_agreement_join(recs, k=2)
        assert res.pair_set() == {("a", "b")}

    def test_k_bounds(self):
        recs = [{"name": "a", "address": "x", "email": "e", "phone": "p"}]
        with pytest.raises(PredicateError):
            fd_agreement_join(recs, k=0)
        with pytest.raises(PredicateError):
            fd_agreement_join(recs, k=4)

    def test_duplicate_keys_rejected(self):
        recs = [
            {"name": "a", "address": "x", "email": "e", "phone": "p"},
            {"name": "a", "address": "y", "email": "f", "phone": "q"},
        ]
        with pytest.raises(PredicateError):
            fd_agreement_join(recs, k=1)


class TestTopK:
    REFS = ["microsoft corp", "microsoft corporation", "oracle corp", "ibm"]

    def test_best_matches_ranked(self):
        out = topk_matches(["microsoft corp"], self.REFS, k=2, threshold=0.4,
                           weights=None)
        matches = out["microsoft corp"]
        assert len(matches) == 2
        assert matches[0].right == "microsoft corp"
        assert matches[0].similarity >= matches[1].similarity

    def test_no_match_gives_empty_list(self):
        out = topk_matches(["zzzz qqqq"], self.REFS, k=3, threshold=0.5, weights=None)
        assert out["zzzz qqqq"] == []

    def test_custom_similarity_reranks(self):
        out = topk_matches(
            ["microsoft corp"],
            self.REFS,
            k=1,
            threshold=0.3,
            weights=None,
            similarity=edit_similarity,
        )
        assert out["microsoft corp"][0].right == "microsoft corp"

    def test_k_limits_results(self):
        out = topk_matches(["microsoft corp"], self.REFS, k=1, threshold=0.1,
                           weights=None)
        assert len(out["microsoft corp"]) == 1

    def test_validation(self):
        with pytest.raises(PredicateError):
            topk_matches(["a"], ["b"], k=0)
        with pytest.raises(PredicateError):
            topk_matches(["a"], ["b"], threshold=2.0)
