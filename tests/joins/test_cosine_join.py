"""Cosine join vs a binary-vector oracle."""

import math

import pytest

from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.joins.cosine_join import cosine_join
from repro.joins.direct import direct_join
from repro.sim.cosine import cosine_vectors
from repro.tokenize.weights import IDFWeights, UnitWeights, WeightTable
from repro.tokenize.words import word_set, words

STRINGS = [
    "microsoft corp redmond wa",
    "microsoft corp redmond",
    "microsoft corporation redmond wa",
    "oracle corp redwood ca",
    "oracle corp redwood shores ca",
    "solo",
]


def binary_cosine(a: str, b: str, table: WeightTable = UnitWeights()) -> float:
    """Oracle: cosine of binary (distinct-token) weighted vectors."""
    u = {t: table.weight(t) for t in word_set(a)}
    v = {t: table.weight(t) for t in word_set(b)}
    return cosine_vectors(u, v)


class TestCosineJoin:
    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.85, 0.95])
    @pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "probe"])
    def test_matches_oracle_unweighted(self, threshold, implementation):
        res = cosine_join(STRINGS, threshold=threshold, weights=None,
                          implementation=implementation)
        oracle = direct_join(STRINGS, similarity=binary_cosine, threshold=threshold)
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_idf(self):
        table = IDFWeights.fit([words(v) for v in STRINGS] * 2)
        res = cosine_join(STRINGS, threshold=0.7, weights=table)
        oracle = direct_join(
            STRINGS,
            similarity=lambda a, b: binary_cosine(a, b, table),
            threshold=0.7,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_matches_oracle_on_generated_addresses(self):
        rows = generate_addresses(CustomerConfig(num_rows=120, seed=19))
        res = cosine_join(rows, threshold=0.8, weights=None)
        oracle = direct_join(rows, similarity=binary_cosine, threshold=0.8)
        assert res.pair_set() == oracle.pair_set()

    def test_known_value(self):
        # |{a,b,c} ∩ {a,b,d}| / sqrt(3*3) = 2/3
        res = cosine_join(["a b c", "a b d"], threshold=0.6, weights=None)
        assert res.pairs[0].similarity == pytest.approx(2 / 3)

    def test_two_relation(self):
        res = cosine_join(["a b"], ["a b c", "x"], threshold=0.8, weights=None)
        assert res.pair_set() == {("a b", "a b c")}

    def test_identical_strings_cosine_one(self):
        res = cosine_join(["a b", "b a"], threshold=0.99, weights=None)
        assert res.pairs[0].similarity == pytest.approx(1.0)

    def test_bad_threshold(self):
        with pytest.raises(PredicateError):
            cosine_join(STRINGS, threshold=0.0)
