"""Run the doctests embedded in the library's docstrings.

Public-facing examples in docstrings must stay executable; this module
makes them part of the suite without relying on pytest's --doctest-modules
flag (so plain ``pytest tests/`` covers them).

Modules are resolved by name via importlib because some packages re-export
functions that shadow their defining submodule (``repro.tokenize.soundex``
the module vs ``soundex`` the function).
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.analysis.plan_verifier",
    "repro.analysis.sql_check",
    "repro.bench.reporting",
    "repro.core.ssjoin",
    "repro.joins.cooccurrence",
    "repro.joins.cosine_join",
    "repro.joins.direct",
    "repro.joins.edit_join",
    "repro.joins.soundex_join",
    "repro.relational.aggregates",
    "repro.relational.groupwise",
    "repro.relational.query",
    "repro.relational.sql.compiler",
    "repro.relational.sql.lexer",
    "repro.relational.sql.parser",
    "repro.relational.sql.unparser",
    "repro.core.incremental",
    "repro.sim.cosine",
    "repro.sim.edit",
    "repro.sim.ges",
    "repro.sim.hamming",
    "repro.sim.jaccard",
    "repro.tokenize.elements",
    "repro.tokenize.qgrams",
    "repro.tokenize.sets",
    "repro.tokenize.soundex",
    "repro.tokenize.words",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"


def test_doctests_actually_exist():
    """Guard against the suite silently passing on doc-less modules."""
    total = sum(
        doctest.testmod(importlib.import_module(n), verbose=False).attempted
        for n in MODULE_NAMES
    )
    assert total >= 30
