"""All-Pairs vs a brute-force binary-cosine oracle."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ExecutionMetrics
from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.extensions.allpairs import allpairs, allpairs_strings
from repro.joins.cosine_join import cosine_join
from repro.tokenize.words import word_set


def binary_cosine(a, b) -> float:
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / math.sqrt(len(sa) * len(sb))


def oracle_triples(records, threshold):
    out = set()
    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            if binary_cosine(records[i], records[j]) + 1e-9 >= threshold:
                out.add((i, j))
    return out


class TestAllPairsCore:
    @pytest.mark.parametrize("threshold", [0.4, 0.6, 0.8, 0.95, 1.0])
    def test_handcrafted(self, threshold):
        records = [
            ["a", "b", "c", "d"],
            ["a", "b", "c", "e"],
            ["a", "b"],
            ["x", "y", "z"],
            ["x", "y"],
            ["solo"],
        ]
        got = {(i, j) for i, j, _ in allpairs(records, threshold)}
        assert got == oracle_triples(records, threshold)

    def test_reported_cosine_exact(self):
        records = [["a", "b", "c", "d"], ["a", "b", "c", "e"]]
        ((i, j, cosine),) = allpairs(records, 0.5)
        assert cosine == pytest.approx(3 / 4)

    def test_empty_records_never_match(self):
        assert allpairs([[], ["a"], []], 0.5) == []

    def test_threshold_validation(self):
        with pytest.raises(PredicateError):
            allpairs([["a"]], 1.5)

    @given(
        st.lists(st.lists(st.sampled_from("abcdefgh"), max_size=8), max_size=10),
        st.sampled_from([0.3, 0.5, 0.7, 0.9, 1.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_oracle_property(self, records, threshold):
        got = {(i, j) for i, j, _ in allpairs(records, threshold)}
        assert got == oracle_triples(records, threshold)

    def test_metrics(self):
        m = ExecutionMetrics()
        allpairs([["a", "b"], ["a", "c"]], 0.5, metrics=m)
        assert m.implementation == "allpairs"
        assert m.similarity_comparisons >= m.result_pairs


class TestAllPairsStrings:
    def test_agrees_with_cosine_join_on_addresses(self):
        """All-Pairs and the SSJoin-based cosine join must find the same
        unordered pairs (both are exact for unweighted binary cosine)."""
        rows = generate_addresses(CustomerConfig(num_rows=120, seed=61))
        ap = allpairs_strings(rows, threshold=0.8)
        ssjoin_based = cosine_join(rows, threshold=0.8, weights=None)
        assert ap.pair_set() == ssjoin_based.pair_set()

    def test_duplicate_strings_collapse(self):
        res = allpairs_strings(["a b", "a b", "a c"], threshold=0.4)
        assert res.pair_set() == {("a b", "a c")}

    def test_prefix_indexing_prunes(self):
        rows = generate_addresses(CustomerConfig(num_rows=150, seed=67))
        m = ExecutionMetrics()
        allpairs_strings(rows, threshold=0.85, metrics=m)
        assert m.similarity_comparisons < len(rows) ** 2 / 10
