"""PPJoin vs a brute-force set-Jaccard oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ExecutionMetrics
from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import PredicateError
from repro.extensions.ppjoin import ppjoin, ppjoin_strings
from repro.joins.direct import direct_join
from repro.tokenize.words import word_set


def set_jaccard(a, b) -> float:
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    return len(sa & sb) / len(union)


def oracle_triples(records, threshold):
    out = set()
    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            if not set(records[i]) or not set(records[j]):
                continue  # empty sets never join (operator semantics)
            if set_jaccard(records[i], records[j]) + 1e-9 >= threshold:
                out.add((i, j))
    return out


class TestPPJoinCore:
    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.8, 0.9, 1.0])
    def test_handcrafted(self, threshold):
        records = [
            ["a", "b", "c", "d"],
            ["a", "b", "c", "e"],
            ["a", "b", "c", "d", "e"],
            ["x", "y"],
            ["x", "y", "z"],
            ["q"],
        ]
        got = {(i, j) for i, j, _ in ppjoin(records, threshold)}
        assert got == oracle_triples(records, threshold)

    def test_reported_jaccard_exact(self):
        records = [["a", "b", "c", "d"], ["a", "b", "c", "e"]]
        ((i, j, jaccard),) = ppjoin(records, 0.5)
        assert jaccard == pytest.approx(3 / 5)

    def test_duplicate_tokens_collapsed(self):
        records = [["a", "a", "b"], ["a", "b", "b"]]
        triples = ppjoin(records, 0.99)
        assert [(i, j) for i, j, _ in triples] == [(0, 1)]
        assert triples[0][2] == pytest.approx(1.0)

    def test_empty_records_never_match(self):
        assert ppjoin([[], [], ["a"]], 0.5) == []

    def test_threshold_validation(self):
        with pytest.raises(PredicateError):
            ppjoin([["a"]], 0.0)

    @given(
        st.lists(
            st.lists(st.sampled_from("abcdefgh"), max_size=8),
            max_size=10,
        ),
        st.sampled_from([0.3, 0.5, 0.7, 0.9, 1.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_oracle_property(self, records, threshold):
        got = {(i, j) for i, j, _ in ppjoin(records, threshold)}
        assert got == oracle_triples(records, threshold)

    def test_metrics_capture_candidates(self):
        records = [["a", "b", "c"], ["a", "b", "d"], ["x", "y", "z"]]
        m = ExecutionMetrics()
        ppjoin(records, 0.5, metrics=m)
        assert m.implementation == "ppjoin"
        assert m.candidate_pairs >= m.result_pairs


class TestPPJoinStrings:
    def test_matches_direct_oracle_on_addresses(self):
        rows = generate_addresses(CustomerConfig(num_rows=120, seed=37))
        res = ppjoin_strings(rows, threshold=0.7)
        oracle = direct_join(
            rows,
            similarity=lambda a, b: set_jaccard(word_set(a), word_set(b)),
            threshold=0.7,
        )
        assert res.pair_set() == oracle.pair_set()

    def test_duplicate_strings_collapse(self):
        res = ppjoin_strings(["a b c", "a b c", "a b d"], threshold=0.5)
        assert res.pair_set() == {("a b c", "a b d")}

    def test_positional_filter_prunes(self):
        """PPJoin must verify no more candidates than pure prefix filtering
        would (the positional filter only removes work)."""
        rows = generate_addresses(CustomerConfig(num_rows=150, seed=53))
        m = ExecutionMetrics()
        ppjoin_strings(rows, threshold=0.85, metrics=m)
        # Every verified candidate is at least potentially a result;
        # the filter must be doing real pruning on skewed data.
        assert m.similarity_comparisons < len(rows) ** 2 / 10
