"""Unit tests for logical plan nodes and EXPLAIN."""

import pytest

from repro.errors import PlanError
from repro.relational.aggregates import agg_sum
from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.plan import (
    Custom,
    Distinct,
    Extend,
    GroupBy,
    Groupwise,
    HashJoin,
    Limit,
    MaterializedInput,
    MergeJoin,
    NestedLoopJoin,
    OrderBy,
    Project,
    Select,
    TableScan,
    explain,
)
from repro.relational.relation import Relation


@pytest.fixture
def catalog():
    c = Catalog()
    c.register(
        "emp",
        Relation.from_rows(
            ["dept", "name", "salary"],
            [("eng", "ann", 120), ("eng", "bob", 100), ("ops", "cid", 90)],
        ),
    )
    c.register("dept", Relation.from_rows(["d", "site"], [("eng", "hq"), ("ops", "east")]))
    return c


class TestLeaves:
    def test_table_scan(self, catalog):
        assert TableScan("emp").execute(catalog).num_rows == 3

    def test_materialized(self, catalog):
        rel = Relation.from_rows(["x"], [(1,)])
        node = MaterializedInput(rel, "lit")
        assert node.execute(catalog) is rel
        assert "lit" in node.label()


class TestUnaryNodes:
    def test_select(self, catalog):
        node = Select(TableScan("emp"), col("salary") >= 100)
        assert node.execute(catalog).num_rows == 2

    def test_project(self, catalog):
        node = Project(TableScan("emp"), ["name", ("double", col("salary") * 2)])
        out = node.execute(catalog)
        assert out.column_names == ("name", "double")

    def test_extend(self, catalog):
        out = Extend(TableScan("emp"), "bump", col("salary") + 1).execute(catalog)
        assert "bump" in out.column_names

    def test_distinct(self, catalog):
        node = Distinct(Project(TableScan("emp"), ["dept"]))
        assert node.execute(catalog).num_rows == 2

    def test_order_limit(self, catalog):
        node = Limit(OrderBy(TableScan("emp"), [("salary", "desc")]), 1)
        assert node.execute(catalog).rows[0][1] == "ann"


class TestJoins:
    def test_hash_join_node(self, catalog):
        node = HashJoin(TableScan("emp"), TableScan("dept"), keys=[("dept", "d")])
        assert node.execute(catalog).num_rows == 3

    def test_merge_join_node(self, catalog):
        node = MergeJoin(TableScan("emp"), TableScan("dept"), keys=[("dept", "d")])
        assert node.execute(catalog).num_rows == 3

    def test_nested_loop_node(self, catalog):
        node = NestedLoopJoin(
            TableScan("emp"),
            TableScan("dept"),
            predicate=lambda l, r: l[0] == r[0],
            description="dept match",
        )
        assert node.execute(catalog).num_rows == 3
        assert "dept match" in node.label()


class TestAggregationNodes:
    def test_group_by_node(self, catalog):
        node = GroupBy(
            TableScan("emp"),
            keys=["dept"],
            aggregates=[agg_sum("payroll", col("salary"))],
            having=col("payroll") >= 200,
        )
        assert node.execute(catalog).rows == (("eng", 220),)

    def test_groupwise_node(self, catalog):
        node = Groupwise(
            TableScan("emp"),
            keys=["dept"],
            subquery=lambda g: g.order_by(["salary"], reverse=True).head(1),
            description="top earner",
        )
        out = node.execute(catalog)
        assert sorted(r[1] for r in out.rows) == ["ann", "cid"]

    def test_custom_node(self, catalog):
        node = Custom(TableScan("emp"), lambda r: r.head(1), "take one")
        assert node.execute(catalog).num_rows == 1


class TestExplain:
    def test_tree_rendering(self, catalog):
        node = Limit(
            Select(HashJoin(TableScan("emp"), TableScan("dept"), keys=[("dept", "d")]),
                   col("salary") > 0),
            5,
        )
        text = explain(node)
        lines = text.splitlines()
        assert lines[0].startswith("Limit(5)")
        assert any("HashJoin" in l for l in lines)
        assert any(l.startswith("      Scan(dept)") for l in lines)

    def test_explain_rejects_non_node(self):
        with pytest.raises(PlanError):
            explain("not a plan")
