"""Unit tests for GROUP BY / HAVING."""

import pytest

from repro.errors import PlanError
from repro.relational.aggregates import (
    agg_avg,
    agg_collect,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    group_by,
)
from repro.relational.expressions import col
from repro.relational.relation import Relation


@pytest.fixture
def sales():
    return Relation.from_rows(
        ["region", "item", "amount"],
        [
            ("west", "a", 10),
            ("west", "b", 5),
            ("east", "a", 7),
            ("east", "b", None),
            ("east", "c", 3),
        ],
    )


class TestAggregates:
    def test_sum(self, sales):
        out = group_by(sales.select(lambda r: r[2] is not None),
                       ["region"], [agg_sum("total", col("amount"))])
        assert dict(out.rows) == {"west": 15, "east": 10}

    def test_count_star(self, sales):
        out = group_by(sales, ["region"], [agg_count("n")])
        assert dict(out.rows) == {"west": 2, "east": 3}

    def test_count_expr_skips_none(self, sales):
        out = group_by(sales, ["region"], [agg_count("n", col("amount"))])
        assert dict(out.rows) == {"west": 2, "east": 2}

    def test_min_max(self, sales):
        nn = sales.select(lambda r: r[2] is not None)
        out = group_by(nn, ["region"], [agg_min("lo", col("amount")), agg_max("hi", col("amount"))])
        assert sorted(out.rows) == [("east", 3, 7), ("west", 5, 10)]

    def test_avg(self, sales):
        nn = sales.select(lambda r: r[2] is not None)
        out = group_by(nn, ["region"], [agg_avg("mean", col("amount"))])
        assert dict(out.rows)["west"] == pytest.approx(7.5)

    def test_collect(self, sales):
        out = group_by(sales, ["region"], [agg_collect("items", col("item"))])
        assert dict(out.rows)["east"] == ("a", "b", "c")


class TestGrouping:
    def test_multi_key(self, sales):
        out = group_by(sales, ["region", "item"], [agg_count("n")])
        assert out.num_rows == 5

    def test_no_keys_global_aggregate(self, sales):
        out = group_by(sales, [], [agg_count("n")])
        assert out.rows == ((5,),)

    def test_empty_input_no_groups(self):
        out = group_by(Relation.empty(["a", "w"]), ["a"], [agg_count("n")])
        assert out.num_rows == 0

    def test_no_keys_no_aggs_rejected(self, sales):
        with pytest.raises(PlanError):
            group_by(sales, [], [])

    def test_output_schema(self, sales):
        out = group_by(sales, ["region"], [agg_count("n")])
        assert out.column_names == ("region", "n")


class TestHaving:
    def test_having_on_aggregate(self, sales):
        out = group_by(sales, ["region"], [agg_count("n")], having=col("n") >= 3)
        assert out.column_values("region") == ("east",)

    def test_having_on_key(self, sales):
        out = group_by(sales, ["region"], [agg_count("n")], having=col("region").eq("west"))
        assert out.column_values("region") == ("west",)

    def test_having_mixed(self, sales):
        nn = sales.select(lambda r: r[2] is not None)
        out = group_by(
            nn,
            ["region"],
            [agg_sum("total", col("amount"))],
            having=(col("total") >= 10).and_(col("region").ne("east")),
        )
        assert out.column_values("region") == ("west",)


class TestNullSemantics:
    """SQL NULL handling: aggregates skip NULLs; all-NULL gives NULL."""

    def test_sum_skips_nulls(self, sales):
        out = group_by(sales, ["region"], [agg_sum("total", col("amount"))])
        assert dict(out.rows) == {"west": 15, "east": 10}

    def test_all_null_group_gives_null(self):
        r = Relation.from_rows(["a", "w"], [("x", None), ("x", None)])
        out = group_by(r, ["a"], [agg_sum("s", col("w")),
                                  agg_min("lo", col("w")),
                                  agg_max("hi", col("w")),
                                  agg_avg("mean", col("w"))])
        assert out.rows == (("x", None, None, None, None),)

    def test_min_max_avg_skip_nulls(self, sales):
        out = group_by(sales, ["region"],
                       [agg_min("lo", col("amount")),
                        agg_max("hi", col("amount")),
                        agg_avg("mean", col("amount"))])
        east = dict((r[0], r[1:]) for r in out.rows)["east"]
        assert east == (3, 7, 5.0)

    def test_global_aggregate_over_empty_input_yields_one_row(self):
        out = group_by(Relation.empty(["w"]), [],
                       [agg_count("n"), agg_sum("s", col("w"))])
        assert out.rows == ((0, None),)

    def test_keyed_aggregate_over_empty_input_yields_no_rows(self):
        out = group_by(Relation.empty(["a", "w"]), ["a"], [agg_count("n")])
        assert out.num_rows == 0
