"""Unit tests for Relation."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def people():
    return Relation.from_rows(
        ["name", "age"], [("ann", 31), ("bob", 27), ("cid", 31)], name="people"
    )


class TestConstruction:
    def test_from_rows(self, people):
        assert people.num_rows == 3
        assert people.column_names == ("name", "age")

    def test_from_rows_validates_on_request(self):
        with pytest.raises(SchemaError):
            Relation.from_rows([("a", int)], [("x",)], validate=True)

    def test_from_dicts_fills_missing_with_none(self):
        r = Relation.from_dicts(["a", "b"], [{"a": 1}])
        assert r.rows == ((1, None),)

    def test_empty(self):
        r = Relation.empty(["a"])
        assert len(r) == 0

    def test_accepts_schema_object(self):
        r = Relation.from_rows(Schema(["a"]), [(1,)])
        assert r.rows == ((1,),)


class TestProtocol:
    def test_iter(self, people):
        assert list(people)[0] == ("ann", 31)

    def test_bag_equality_order_insensitive(self):
        a = Relation.from_rows(["x"], [(1,), (2,)])
        b = Relation.from_rows(["x"], [(2,), (1,)])
        assert a == b

    def test_bag_equality_counts_duplicates(self):
        a = Relation.from_rows(["x"], [(1,), (1,)])
        b = Relation.from_rows(["x"], [(1,)])
        assert a != b

    def test_equality_requires_same_columns(self):
        a = Relation.from_rows(["x"], [(1,)])
        b = Relation.from_rows(["y"], [(1,)])
        assert a != b

    def test_repr(self, people):
        assert "people" in repr(people)
        assert "rows=3" in repr(people)


class TestAccessors:
    def test_column_values(self, people):
        assert people.column_values("age") == (31, 27, 31)

    def test_column_values_unknown(self, people):
        with pytest.raises(UnknownColumnError):
            people.column_values("zzz")

    def test_row_dicts(self, people):
        assert people.row_dicts()[1] == {"name": "bob", "age": 27}

    def test_head(self, people):
        assert people.head(2).num_rows == 2


class TestAlgebra:
    def test_project_keeps_duplicates(self, people):
        assert people.project(["age"]).rows == ((31,), (27,), (31,))

    def test_select(self, people):
        r = people.select(lambda row: row[1] > 30)
        assert r.num_rows == 2

    def test_select_dict(self, people):
        r = people.select_dict(lambda d: d["name"] == "bob")
        assert r.rows == (("bob", 27),)

    def test_distinct_preserves_first_seen_order(self):
        r = Relation.from_rows(["x"], [(2,), (1,), (2,)]).distinct()
        assert r.rows == ((2,), (1,))

    def test_extend(self, people):
        r = people.extend("age2", lambda row: row[1] * 2)
        assert r.column_values("age2") == (62, 54, 62)
        assert r.column_names == ("name", "age", "age2")

    def test_rename(self, people):
        r = people.rename({"name": "who"})
        assert r.column_names == ("who", "age")
        assert r.rows == people.rows

    def test_prefixed(self, people):
        assert people.prefixed("P").column_names == ("P.name", "P.age")

    def test_order_by(self, people):
        r = people.order_by(["age", "name"])
        assert r.column_values("name") == ("bob", "ann", "cid")

    def test_order_by_reverse(self, people):
        r = people.order_by(["age"], reverse=True)
        assert r.column_values("age") == (31, 31, 27)

    def test_union_all(self):
        a = Relation.from_rows(["x"], [(1,)])
        b = Relation.from_rows(["x"], [(1,), (2,)])
        assert a.union_all(b).num_rows == 3

    def test_union_all_mismatch(self):
        a = Relation.from_rows(["x"], [(1,)])
        b = Relation.from_rows(["y"], [(1,)])
        with pytest.raises(SchemaError):
            a.union_all(b)

    def test_validated_passes(self):
        r = Relation.from_rows([("a", int)], [(1,), (2,)])
        assert r.validated() is r

    def test_validated_fails(self):
        r = Relation.from_rows([("a", int)], [("oops",)])
        with pytest.raises(SchemaError):
            r.validated()


class TestTsvRoundTrip:
    def test_round_trip(self, tmp_path):
        r = Relation.from_rows(
            ["name", "n", "score"],
            [("ann", 1, 2.5), ("bob", 2, None)],
            name="t",
        )
        path = tmp_path / "t.tsv"
        r.to_tsv(path)
        back = Relation.from_tsv(path, name="t")
        assert back.column_names == ("name", "n", "score")
        assert back.rows == (("ann", 1, 2.5), ("bob", 2, None))

    def test_type_affinity(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("a\tb\tc\n7\t7.5\tseven\n")
        back = Relation.from_tsv(path)
        assert back.rows == ((7, 7.5, "seven"),)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.tsv"
        path.write_text("")
        with pytest.raises(SchemaError):
            Relation.from_tsv(path)

    def test_header_only_gives_empty_relation(self, tmp_path):
        path = tmp_path / "h.tsv"
        path.write_text("a\tb\n")
        back = Relation.from_tsv(path)
        assert back.num_rows == 0
        assert back.column_names == ("a", "b")
