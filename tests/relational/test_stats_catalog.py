"""Unit tests for statistics and the catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateTableError, UnknownTableError
from repro.relational.catalog import Catalog
from repro.relational.joins import hash_join
from repro.relational.relation import Relation
from repro.relational.stats import (
    ColumnStats,
    TableStats,
    estimate_equijoin_size,
    estimate_self_equijoin_size,
)


@pytest.fixture
def tokens():
    return Relation.from_rows(
        ["t"], [("the",), ("the",), ("the",), ("inc",), ("acme",), (None,)]
    )


class TestColumnStats:
    def test_counts(self, tokens):
        s = ColumnStats.from_relation(tokens, "t")
        assert s.num_rows == 5  # nulls excluded
        assert s.num_distinct == 3
        assert s.frequencies["the"] == 3

    def test_max_mean_skew(self, tokens):
        s = ColumnStats.from_relation(tokens, "t")
        assert s.max_frequency == 3
        assert s.mean_frequency == pytest.approx(5 / 3)
        assert s.skew() == pytest.approx(3 / (5 / 3))

    def test_top_k(self, tokens):
        s = ColumnStats.from_relation(tokens, "t")
        assert s.top_k(1) == (("the", 3),)

    def test_entropy_uniform_is_log_n(self):
        r = Relation.from_rows(["t"], [("a",), ("b",), ("c",), ("d",)])
        s = ColumnStats.from_relation(r, "t")
        assert s.entropy() == pytest.approx(2.0)

    def test_empty_column(self):
        s = ColumnStats.from_relation(Relation.empty(["t"]), "t")
        assert s.max_frequency == 0
        assert s.mean_frequency == 0.0
        assert s.skew() == 0.0
        assert s.entropy() == 0.0


class TestJoinSizeEstimates:
    def test_exactness_vs_real_join(self, tokens):
        other = Relation.from_rows(["t2"], [("the",), ("inc",), ("inc",), ("xyz",)])
        ls = ColumnStats.from_relation(tokens, "t")
        rs = ColumnStats.from_relation(other, "t2")
        joined = hash_join(tokens, other, keys=[("t", "t2")])
        assert estimate_equijoin_size(ls, rs) == joined.num_rows

    def test_self_join_size(self, tokens):
        s = ColumnStats.from_relation(tokens, "t")
        assert estimate_self_equijoin_size(s) == 9 + 1 + 1

    @given(
        st.lists(st.sampled_from("abcde"), max_size=30),
        st.lists(st.sampled_from("abcde"), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_always_exact(self, lvals, rvals):
        left = Relation.from_rows(["t"], [(v,) for v in lvals])
        right = Relation.from_rows(["t2"], [(v,) for v in rvals])
        ls = ColumnStats.from_relation(left, "t")
        rs = ColumnStats.from_relation(right, "t2")
        joined = hash_join(left, right, keys=[("t", "t2")])
        assert estimate_equijoin_size(ls, rs) == joined.num_rows


class TestTableStats:
    def test_lazily_cached(self, tokens):
        ts = TableStats(tokens)
        first = ts.column("t")
        assert ts.column("t") is first
        assert ts.num_rows == 6


class TestCatalog:
    def test_register_get(self, tokens):
        c = Catalog()
        c.register("tok", tokens)
        assert c.get("tok").name == "tok"
        assert "tok" in c
        assert len(c) == 1

    def test_duplicate_register(self, tokens):
        c = Catalog()
        c.register("tok", tokens)
        with pytest.raises(DuplicateTableError):
            c.register("tok", tokens)
        c.register("tok", tokens, replace=True)  # allowed

    def test_unknown_get_drop(self):
        c = Catalog()
        with pytest.raises(UnknownTableError):
            c.get("zzz")
        with pytest.raises(UnknownTableError):
            c.drop("zzz")

    def test_drop_clears_stats(self, tokens):
        c = Catalog()
        c.register("tok", tokens)
        c.stats("tok")
        c.drop("tok")
        assert "tok" not in c

    def test_stats_cached_until_replace(self, tokens):
        c = Catalog()
        c.register("tok", tokens)
        s1 = c.stats("tok")
        assert c.stats("tok") is s1
        c.register("tok", tokens, replace=True)
        assert c.stats("tok") is not s1

    def test_names_sorted(self, tokens):
        c = Catalog()
        c.register("b", tokens)
        c.register("a", tokens)
        assert c.names() == ("a", "b")
