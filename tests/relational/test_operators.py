"""Unit tests for expression-driven unary operators."""

import pytest

from repro.errors import PlanError
from repro.relational import operators
from repro.relational.expressions import col
from repro.relational.relation import Relation


@pytest.fixture
def table():
    return Relation.from_rows(
        ["name", "score"],
        [("ann", 3), ("bob", 9), ("cid", 3), ("dee", 7)],
    )


class TestSelect:
    def test_select(self, table):
        out = operators.select(table, col("score") >= 7)
        assert out.column_values("name") == ("bob", "dee")

    def test_select_none(self, table):
        assert len(operators.select(table, col("score") > 100)) == 0


class TestProject:
    def test_passthrough(self, table):
        out = operators.project(table, ["score"])
        assert out.column_names == ("score",)
        assert out.num_rows == 4

    def test_derived(self, table):
        out = operators.project(table, ["name", ("double", col("score") * 2)])
        assert out.column_values("double") == (6, 18, 6, 14)

    def test_bad_item(self, table):
        with pytest.raises(PlanError):
            operators.project(table, [42])


class TestExtend:
    def test_extend(self, table):
        out = operators.extend(table, "bonus", col("score") + 1)
        assert out.column_names[-1] == "bonus"
        assert out.column_values("bonus") == (4, 10, 4, 8)


class TestDistinct:
    def test_distinct_projected(self, table):
        out = operators.distinct(table, ["score"])
        assert sorted(out.column_values("score")) == [3, 7, 9]

    def test_distinct_full(self, table):
        assert len(operators.distinct(table)) == 4


class TestOrderBy:
    def test_single_key(self, table):
        out = operators.order_by(table, ["score"])
        assert out.column_values("score") == (3, 3, 7, 9)

    def test_descending(self, table):
        out = operators.order_by(table, [("score", "desc")])
        assert out.column_values("score") == (9, 7, 3, 3)

    def test_mixed_direction(self, table):
        out = operators.order_by(table, [("score", "asc"), ("name", "desc")])
        assert out.column_values("name") == ("cid", "ann", "dee", "bob")


class TestLimitUnion:
    def test_limit(self, table):
        assert operators.limit(table, 2).num_rows == 2

    def test_limit_negative(self, table):
        with pytest.raises(PlanError):
            operators.limit(table, -1)

    def test_union_all_multi(self, table):
        out = operators.union_all(table, table, table)
        assert out.num_rows == 12

    def test_union_all_empty_args(self):
        with pytest.raises(PlanError):
            operators.union_all()


class TestValueCounts:
    def test_counts(self, table):
        assert operators.value_counts(table, "score") == {3: 2, 9: 1, 7: 1}
