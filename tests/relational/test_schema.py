"""Unit tests for Column/Schema."""

import pytest

from repro.errors import DuplicateColumnError, SchemaError, UnknownColumnError
from repro.relational.schema import Column, Schema


class TestColumn:
    def test_plain_column_accepts_anything(self):
        c = Column("x")
        assert c.accepts(1)
        assert c.accepts("s")
        assert c.accepts(None)

    def test_typed_column_checks_type(self):
        c = Column("x", int)
        assert c.accepts(3)
        assert not c.accepts("3")

    def test_typed_column_accepts_none(self):
        assert Column("x", int).accepts(None)

    def test_float_column_accepts_int(self):
        assert Column("x", float).accepts(3)

    def test_float_column_rejects_bool(self):
        assert not Column("x", float).accepts(True)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Column(3)  # type: ignore[arg-type]

    def test_renamed_keeps_dtype(self):
        c = Column("x", int).renamed("y")
        assert c.name == "y"
        assert c.dtype is int


class TestSchemaConstruction:
    def test_from_strings(self):
        s = Schema(["a", "b"])
        assert s.names == ("a", "b")

    def test_from_columns(self):
        s = Schema([Column("a", int), Column("b")])
        assert s.column("a").dtype is int

    def test_from_tuples(self):
        s = Schema([("a", int)])
        assert s.column("a").dtype is int

    def test_duplicate_rejected(self):
        with pytest.raises(DuplicateColumnError):
            Schema(["a", "a"])

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            Schema([42])

    def test_len_iter_contains(self):
        s = Schema(["a", "b", "c"])
        assert len(s) == 3
        assert [c.name for c in s] == ["a", "b", "c"]
        assert "b" in s
        assert "z" not in s

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_repr_shows_types(self):
        assert "a:int" in repr(Schema([("a", int)]))


class TestSchemaAccess:
    def test_position(self):
        s = Schema(["a", "b"])
        assert s.position("b") == 1

    def test_positions(self):
        s = Schema(["a", "b", "c"])
        assert s.positions(["c", "a"]) == (2, 0)

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError) as exc:
            Schema(["a"]).position("z")
        assert "z" in str(exc.value)
        assert "a" in str(exc.value)


class TestSchemaTransforms:
    def test_project_reorders(self):
        s = Schema(["a", "b", "c"]).project(["c", "a"])
        assert s.names == ("c", "a")

    def test_rename(self):
        s = Schema(["a", "b"]).rename({"a": "x"})
        assert s.names == ("x", "b")

    def test_rename_unknown_raises(self):
        with pytest.raises(UnknownColumnError):
            Schema(["a"]).rename({"z": "x"})

    def test_prefixed(self):
        s = Schema(["a", "b"]).prefixed("R")
        assert s.names == ("R.a", "R.b")

    def test_concat(self):
        s = Schema(["a"]).concat(Schema(["b"]))
        assert s.names == ("a", "b")

    def test_concat_conflict_raises(self):
        with pytest.raises(DuplicateColumnError):
            Schema(["a"]).concat(Schema(["a"]))

    def test_extend(self):
        s = Schema(["a"]).extend([("w", float)])
        assert s.names == ("a", "w")


class TestValidation:
    def test_validate_ok(self):
        Schema([("a", int), "b"]).validate_row((1, "x"))

    def test_validate_arity(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"]).validate_row((1,))

    def test_validate_type(self):
        with pytest.raises(SchemaError) as exc:
            Schema([("a", int)]).validate_row(("bad",))
        assert "a" in str(exc.value)
