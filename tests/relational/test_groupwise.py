"""Unit tests for the groupwise-processing operator and ordered group scan."""

import pytest

from repro.errors import PlanError, SchemaError
from repro.relational.groupwise import groupwise_apply, scan_groups
from repro.relational.relation import Relation


@pytest.fixture
def table():
    return Relation.from_rows(
        ["a", "w"],
        [("x", 2), ("y", 5), ("x", 9), ("y", 1), ("x", 4)],
    )


class TestGroupwiseApply:
    def test_top1_per_group(self, table):
        top1 = lambda g: g.order_by(["w"], reverse=True).head(1)
        out = groupwise_apply(table, ["a"], top1)
        assert sorted(out.rows) == [("x", 9), ("y", 5)]

    def test_subquery_may_filter_everything(self, table):
        out = groupwise_apply(table, ["a"], lambda g: g.select(lambda r: False))
        assert out.num_rows == 0
        assert out.column_names == ("a", "w")

    def test_subquery_may_change_schema(self, table):
        summarize = lambda g: Relation.from_rows(
            ["a", "total"], [(g.rows[0][0], sum(r[1] for r in g.rows))]
        )
        out = groupwise_apply(table, ["a"], summarize)
        assert sorted(out.rows) == [("x", 15), ("y", 6)]

    def test_inconsistent_schema_rejected(self, table):
        flaky = lambda g: (
            g if g.rows[0][0] == "x" else g.rename({"w": "v"})
        )
        with pytest.raises(SchemaError):
            groupwise_apply(table, ["a"], flaky)

    def test_empty_input_probes_schema(self):
        empty = Relation.empty(["a", "w"])
        out = groupwise_apply(empty, ["a"], lambda g: g.project(["w"]))
        assert out.column_names == ("w",)
        assert out.num_rows == 0

    def test_prefix_marking_use_case(self, table):
        """The paper's use: keep each group's 2 smallest-w elements."""
        prefix2 = lambda g: g.order_by(["w"]).head(2)
        out = groupwise_apply(table, ["a"], prefix2)
        assert sorted(out.rows) == [("x", 2), ("x", 4), ("y", 1), ("y", 5)]


class TestScanGroups:
    def test_groups_are_contiguous_and_sorted(self, table):
        groups = list(scan_groups(table, ["a"]))
        assert [k for k, _ in groups] == [("x",), ("y",)]
        assert len(groups[0][1]) == 3

    def test_order_within(self, table):
        groups = dict(scan_groups(table, ["a"], order_within=["w"]))
        assert [r[1] for r in groups[("x",)]] == [2, 4, 9]

    def test_requires_keys(self, table):
        with pytest.raises(PlanError):
            list(scan_groups(table, []))

    def test_empty_relation(self):
        assert list(scan_groups(Relation.empty(["a"]), ["a"])) == []
