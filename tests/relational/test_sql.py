"""Tests for the mini-SQL front end: lexer, parser, compiler, execution."""

import pytest

from repro.errors import PlanError, UnknownColumnError
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.sql import SqlSyntaxError, execute_sql, parse, tokenize
from repro.relational.sql.ast import Binary, Call, ColumnName, Literal


@pytest.fixture
def catalog():
    c = Catalog()
    c.register(
        "emp",
        Relation.from_rows(
            ["dept", "name", "salary"],
            [("eng", "ann", 120), ("eng", "bob", 100), ("ops", "cid", 90),
             ("ops", "dee", None)],
        ),
    )
    c.register("sites", Relation.from_rows(["d", "city"], [("eng", "sea"), ("ops", "pdx")]))
    return c


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE")]
        assert kinds[:3] == ["keyword"] * 3

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'o''brien'")
        assert tokens[1].value == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "0.125"]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT a -- comment here\nFROM t")
        assert [t.value for t in tokens[:4]] == ["SELECT", "a", "FROM", "t"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_multichar_operators(self):
        values = [t.value for t in tokenize("a <= b >= c <> d")]
        assert "<=" in values and ">=" in values and "<>" in values


class TestParser:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert [i.expr.name for i in stmt.items] == ["a", "b"]
        assert stmt.table.table == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert len(stmt.items) == 1

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "u"

    def test_join_on_conjunction(self):
        stmt = parse("SELECT * FROM r JOIN s ON r.a = s.a AND r.b = s.b")
        assert len(stmt.joins) == 1
        assert len(stmt.joins[0].on) == 2

    def test_join_requires_equality(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM r JOIN s ON r.a < s.a")

    def test_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 "
            "ORDER BY n DESC, a LIMIT 5"
        )
        assert stmt.group_by[0].name == "a"
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5

    def test_expression_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a + b * 2 >= 10 AND c = 'x' OR d = 1")
        # OR at the top
        assert isinstance(stmt.where, Binary) and stmt.where.op == "OR"
        left = stmt.where.left
        assert left.op == "AND"

    def test_is_null(self):
        stmt = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert stmt.where.left.op == "ISNULL"
        assert stmt.where.right.op == "ISNOTNULL"

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, Call) and call.star

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra, tokens")

    def test_literals(self):
        stmt = parse("SELECT * FROM t WHERE a = 'str' AND b = 2 AND c = TRUE AND d = NULL")
        comparisons = []

        def walk(e):
            if isinstance(e, Binary):
                if e.op == "=":
                    comparisons.append(e.right)
                else:
                    walk(e.left)
                    walk(e.right)

        walk(stmt.where)
        values = [c.value for c in comparisons if isinstance(c, Literal)]
        assert "str" in values and 2 in values and True in values and None in values


class TestExecution:
    def test_projection_and_where(self, catalog):
        out = execute_sql(catalog, "SELECT name FROM emp WHERE salary >= 100")
        assert sorted(out.column_values("name")) == ["ann", "bob"]

    def test_star(self, catalog):
        out = execute_sql(catalog, "SELECT * FROM emp")
        assert out.num_rows == 4
        assert out.column_names == ("dept", "name", "salary")

    def test_derived_column(self, catalog):
        out = execute_sql(
            catalog, "SELECT name, salary * 2 AS double FROM emp WHERE salary = 90"
        )
        assert out.rows == (("cid", 180),)

    def test_order_and_limit(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT name FROM emp WHERE salary IS NOT NULL "
            "ORDER BY salary DESC LIMIT 2",
        )
        assert out.column_values("name") == ("ann", "bob")

    def test_distinct(self, catalog):
        out = execute_sql(catalog, "SELECT DISTINCT dept FROM emp")
        assert out.num_rows == 2

    def test_is_null(self, catalog):
        out = execute_sql(catalog, "SELECT name FROM emp WHERE salary IS NULL")
        assert out.column_values("name") == ("dee",)

    def test_scalar_functions(self, catalog):
        out = execute_sql(
            catalog, "SELECT UPPER(name) AS u, LENGTH(dept) AS l FROM emp LIMIT 1"
        )
        assert out.rows == (("ANN", 3),)

    def test_string_comparison(self, catalog):
        out = execute_sql(catalog, "SELECT name FROM emp WHERE dept = 'ops'")
        assert sorted(out.column_values("name")) == ["cid", "dee"]


class TestJoins:
    def test_equi_join_with_aliases(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT e.name, s.city FROM emp e JOIN sites s ON e.dept = s.d",
        )
        assert out.num_rows == 4
        assert ("ann", "sea") in out.rows

    def test_self_join(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT a.name AS n1, b.name AS n2 FROM emp a JOIN emp b "
            "ON a.dept = b.dept WHERE a.name <> b.name",
        )
        # eng: ann-bob both directions; ops: cid-dee both directions.
        assert out.num_rows == 4

    def test_ambiguous_unqualified_column_rejected(self, catalog):
        with pytest.raises(PlanError):
            execute_sql(
                catalog,
                "SELECT name FROM emp a JOIN emp b ON a.dept = b.dept",
            )

    def test_unknown_column(self, catalog):
        with pytest.raises(UnknownColumnError):
            execute_sql(catalog, "SELECT bogus FROM emp")


class TestAggregates:
    def test_group_by_sum(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT dept, SUM(salary) AS payroll FROM emp "
            "WHERE salary IS NOT NULL GROUP BY dept ORDER BY dept",
        )
        assert out.rows == (("eng", 220), ("ops", 90))

    def test_having_with_aggregate_call(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) >= 2",
        )
        assert sorted(out.column_values("dept")) == ["eng", "ops"]

    def test_global_aggregate(self, catalog):
        out = execute_sql(catalog, "SELECT COUNT(*) AS n, MIN(salary) AS lo FROM emp")
        assert out.rows == ((4, 90),)

    def test_count_expr_skips_null(self, catalog):
        out = execute_sql(catalog, "SELECT COUNT(salary) AS n FROM emp")
        assert out.rows == ((3,),)

    def test_avg(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT AVG(salary) AS mean FROM emp WHERE salary IS NOT NULL",
        )
        assert out.rows[0][0] == pytest.approx(310 / 3)

    def test_non_key_column_rejected(self, catalog):
        with pytest.raises(PlanError):
            execute_sql(catalog, "SELECT name, COUNT(*) FROM emp GROUP BY dept")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(PlanError):
            execute_sql(catalog, "SELECT dept FROM emp WHERE SUM(salary) > 1")


class TestFigure7AsSql:
    """The paper's basic SSJoin plan, expressed as the SQL it describes."""

    def test_basic_ssjoin_sql(self):
        from repro.core.prepared import PreparedRelation
        from repro.tokenize.qgrams import qgrams

        prepared = PreparedRelation.from_strings(
            ["Microsoft Corp", "Mcrosoft Corp", "Oracle Corp"],
            lambda s: qgrams(s, 3),
            norm="length",
        )
        c = Catalog()
        # SQL needs plain string keys: serialize the ordinal elements.
        rows = [
            (a, repr(b), w)
            for a, b, w, _ in prepared.relation.rows
        ]
        c.register("tokens", Relation.from_rows(["a", "b", "w"], rows))
        out = execute_sql(
            c,
            "SELECT r.a AS a_r, s.a AS a_s, SUM(r.w) AS overlap "
            "FROM tokens r JOIN tokens s ON r.b = s.b "
            "GROUP BY r.a, s.a "
            "HAVING SUM(r.w) >= 10",
        )
        pairs = {(row[0], row[1]) for row in out.rows if row[0] != row[1]}
        assert pairs == {
            ("Microsoft Corp", "Mcrosoft Corp"),
            ("Mcrosoft Corp", "Microsoft Corp"),
        }

    def test_sql_matches_operator(self):
        """The SQL formulation and basic_ssjoin return identical pairs."""
        from repro.core.basic import basic_ssjoin
        from repro.core.predicate import OverlapPredicate
        from repro.core.prepared import PreparedRelation
        from repro.tokenize.words import words

        values = ["a b c", "a b d", "x y", "x y z"]
        prepared = PreparedRelation.from_strings(values, words)
        c = Catalog()
        rows = [(a, repr(b), w) for a, b, w, _ in prepared.relation.rows]
        c.register("tokens", Relation.from_rows(["a", "b", "w"], rows))
        out = execute_sql(
            c,
            "SELECT r.a AS a_r, s.a AS a_s, SUM(r.w) AS overlap "
            "FROM tokens r JOIN tokens s ON r.b = s.b "
            "GROUP BY r.a, s.a HAVING SUM(r.w) >= 2",
        )
        sql_pairs = {(row[0], row[1]) for row in out.rows}
        op = basic_ssjoin(prepared, prepared, OverlapPredicate.absolute(2.0))
        op_pairs = {(row[0], row[1]) for row in op.rows}
        assert sql_pairs == op_pairs


class TestLeftJoinSql:
    def test_left_join(self, catalog):
        out = execute_sql(
            catalog,
            "SELECT e.name, s.city FROM emp e LEFT JOIN sites s ON e.dept = s.d "
            "ORDER BY name",
        )
        assert out.num_rows == 4
        assert all(len(r) == 2 for r in out.rows)

    def test_left_outer_join_null_filter(self, catalog):
        c2 = Catalog()
        c2.register("emp", Relation.from_rows(["dept", "name"],
                                              [("eng", "ann"), ("hr", "zed")]))
        c2.register("sites", Relation.from_rows(["d", "city"], [("eng", "sea")]))
        out = execute_sql(
            c2,
            "SELECT e.name FROM emp e LEFT OUTER JOIN sites s ON e.dept = s.d "
            "WHERE s.city IS NULL",
        )
        assert out.rows == (("zed",),)


class TestInAndBetween:
    @pytest.fixture
    def values(self):
        c = Catalog()
        c.register("t", Relation.from_rows(
            ["a", "w"], [("x", 1), ("y", 5), ("z", 9), ("q", None)]
        ))
        return c

    def test_in_list(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE a IN ('x','z') ORDER BY a")
        assert out.rows == (("x",), ("z",))

    def test_not_in(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE a NOT IN ('x','z') ORDER BY a")
        assert out.rows == (("q",), ("y",))

    def test_in_with_expressions(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE w IN (1, 4+5) ORDER BY a")
        assert out.rows == (("x",), ("z",))

    def test_null_never_in(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE w IN (1, 5, 9)")
        assert ("q",) not in out.rows

    def test_between(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE w BETWEEN 2 AND 9 ORDER BY a")
        assert out.rows == (("y",), ("z",))

    def test_between_inclusive(self, values):
        out = execute_sql(values, "SELECT a FROM t WHERE w BETWEEN 1 AND 1")
        assert out.rows == (("x",),)

    def test_not_between_flattened_null_semantics(self, values):
        """Documented divergence: flattened 3VL admits NULL under NOT."""
        out = execute_sql(
            values, "SELECT a FROM t WHERE w NOT BETWEEN 2 AND 9 ORDER BY a"
        )
        assert out.rows == (("q",), ("x",))

    def test_not_without_in_or_between_is_error(self, values):
        with pytest.raises(SqlSyntaxError):
            execute_sql(values, "SELECT a FROM t WHERE a NOT 5")

    def test_in_parses_inside_conjunction(self, values):
        out = execute_sql(
            values,
            "SELECT a FROM t WHERE a IN ('x','y') AND w BETWEEN 0 AND 2",
        )
        assert out.rows == (("x",),)
