"""Unit tests for the fluent query builder."""

import pytest

from repro.errors import PlanError, UnknownTableError
from repro.relational.aggregates import agg_count, agg_sum
from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.query import Query
from repro.relational.relation import Relation


@pytest.fixture
def catalog():
    c = Catalog()
    c.register(
        "emp",
        Relation.from_rows(
            ["dept", "name", "salary"],
            [("eng", "ann", 120), ("eng", "bob", 100), ("ops", "cid", 90),
             ("ops", "dee", 95)],
        ),
    )
    c.register("sites", Relation.from_rows(["d", "city"], [("eng", "sea"), ("ops", "pdx")]))
    return c


class TestConstruction:
    def test_table(self, catalog):
        assert Query.table(catalog, "emp").execute().num_rows == 4

    def test_unknown_table_fails_fast(self, catalog):
        with pytest.raises(UnknownTableError):
            Query.table(catalog, "nope")

    def test_relation(self, catalog):
        rel = Relation.from_rows(["x"], [(1,)])
        assert Query.relation(catalog, rel).execute() is rel

    def test_repr(self, catalog):
        assert "Scan(emp)" in repr(Query.table(catalog, "emp"))


class TestUnaryVerbs:
    def test_where_select_order(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .where(col("salary") >= 95)
            .select("name", "salary")
            .order_by(("salary", "desc"))
            .execute()
        )
        assert out.column_values("name") == ("ann", "bob", "dee")

    def test_derived_select(self, catalog):
        out = Query.table(catalog, "emp").select(("bump", col("salary") + 5)).execute()
        assert max(out.column_values("bump")) == 125

    def test_extend_distinct_limit(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .extend("flag", col("salary") >= 100)
            .select("dept", "flag")
            .distinct()
            .limit(3)
            .execute()
        )
        # eng rows both flag True, ops rows both flag False -> 2 distinct.
        assert out.num_rows == 2

    def test_empty_select_rejected(self, catalog):
        with pytest.raises(PlanError):
            Query.table(catalog, "emp").select()

    def test_empty_order_rejected(self, catalog):
        with pytest.raises(PlanError):
            Query.table(catalog, "emp").order_by()

    def test_apply(self, catalog):
        out = Query.table(catalog, "emp").apply(lambda r: r.head(1), "take 1").execute()
        assert out.num_rows == 1


class TestJoins:
    def test_hash_join_to_table_name(self, catalog):
        out = Query.table(catalog, "emp").join("sites", on=[("dept", "d")]).execute()
        assert out.num_rows == 4
        assert "city" in out.column_names

    def test_merge_join_same_result(self, catalog):
        h = Query.table(catalog, "emp").join("sites", on=[("dept", "d")]).execute()
        m = Query.table(catalog, "emp").join("sites", on=[("dept", "d")], how="merge").execute()
        assert sorted(h.rows) == sorted(m.rows)

    def test_join_to_query(self, catalog):
        rich = Query.table(catalog, "emp").where(col("salary") > 95)
        out = Query.table(catalog, "sites").join(rich, on=[("d", "dept")]).execute()
        assert out.num_rows == 2

    def test_join_to_relation(self, catalog):
        extra = Relation.from_rows(["d2", "budget"], [("eng", 10)])
        out = Query.table(catalog, "emp").join(extra, on=[("dept", "d2")]).execute()
        assert out.num_rows == 2

    def test_join_prefixes(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .join("sites", on=[("dept", "d")], prefixes=("E", "S"))
            .execute()
        )
        assert "E.dept" in out.column_names and "S.city" in out.column_names

    def test_unknown_join_method(self, catalog):
        with pytest.raises(PlanError):
            Query.table(catalog, "emp").join("sites", on=[("dept", "d")], how="sort")

    def test_join_garbage(self, catalog):
        with pytest.raises(PlanError):
            Query.table(catalog, "emp").join(42, on="dept")

    def test_theta_join(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .join_where("sites", lambda l, r: l[0] == r[0] and l[2] > 100)
            .execute()
        )
        assert out.num_rows == 1


class TestAggregation:
    def test_group_by_having(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .group_by(["dept"], [agg_sum("payroll", col("salary"))],
                      having=col("payroll") >= 200)
            .execute()
        )
        assert out.rows == (("eng", 220),)

    def test_groupwise(self, catalog):
        out = (
            Query.table(catalog, "emp")
            .groupwise(["dept"], lambda g: g.order_by(["salary"], reverse=True).head(1))
            .execute()
        )
        assert sorted(r[1] for r in out.rows) == ["ann", "dee"]

    def test_chained_aggregation(self, catalog):
        """Count departments whose payroll exceeds 180."""
        out = (
            Query.table(catalog, "emp")
            .group_by(["dept"], [agg_sum("payroll", col("salary"))])
            .where(col("payroll") > 180)
            .group_by([], [agg_count("n")])
            .execute()
        )
        assert out.rows == ((2,),)


class TestImmutability:
    def test_verbs_do_not_mutate(self, catalog):
        base = Query.table(catalog, "emp")
        filtered = base.where(col("salary") > 100)
        assert base.execute().num_rows == 4
        assert filtered.execute().num_rows == 1

    def test_explain(self, catalog):
        text = Query.table(catalog, "emp").where(col("salary") > 0).explain()
        assert text.splitlines()[0].startswith("Select")
        assert "Scan(emp)" in text

    def test_plan_property_composable(self, catalog):
        node = Query.table(catalog, "emp").plan
        assert node.execute(catalog).num_rows == 4


class TestLeftJoin:
    def test_left_join_keeps_unmatched(self, catalog):
        extra = Relation.from_rows(["d2", "budget"], [("eng", 10)])
        out = Query.table(catalog, "emp").left_join(extra, on=[("dept", "d2")]).execute()
        assert out.num_rows == 4
        ops_rows = [r for r in out.rows if r[0] == "ops"]
        assert all(r[-1] is None for r in ops_rows)

    def test_left_join_explain(self, catalog):
        extra = Relation.from_rows(["d2", "budget"], [("eng", 10)])
        q = Query.table(catalog, "emp").left_join(extra, on=[("dept", "d2")])
        assert "LeftOuterJoin" in q.explain()
