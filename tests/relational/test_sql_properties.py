"""Property tests: SQL execution vs direct engine evaluation.

Random WHERE predicates, projections and aggregations are generated as SQL
text and cross-checked against hand-evaluated results over the same rows —
the compiler must agree with the engine it compiles to.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.sql import execute_sql

COLUMNS = ("a", "b", "c")


@st.composite
def tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(-5, 5),
                st.sampled_from(["x", "y", "z"]),
            ),
            max_size=15,
        )
    )
    return rows


@st.composite
def comparisons(draw):
    """A random simple comparison as (sql_text, python_predicate)."""
    column = draw(st.sampled_from(["a", "b"]))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(st.integers(-5, 9))
    index = COLUMNS.index(column)
    checks = {
        "=": lambda v: v == value,
        "<>": lambda v: v != value,
        "<": lambda v: v < value,
        "<=": lambda v: v <= value,
        ">": lambda v: v > value,
        ">=": lambda v: v >= value,
    }
    return f"{column} {op} {value}", (index, checks[op])


def make_catalog(rows):
    c = Catalog()
    c.register("t", Relation.from_rows(list(COLUMNS), rows))
    return c


class TestWhereProperties:
    @given(tables(), comparisons())
    @settings(max_examples=150, deadline=None)
    def test_single_comparison(self, rows, comparison):
        sql_cond, (index, check) = comparison
        out = execute_sql(make_catalog(rows), f"SELECT * FROM t WHERE {sql_cond}")
        expected = [r for r in rows if check(r[index])]
        assert sorted(out.rows) == sorted(expected)

    @given(tables(), comparisons(), comparisons(), st.sampled_from(["AND", "OR"]))
    @settings(max_examples=150, deadline=None)
    def test_boolean_combination(self, rows, c1, c2, connector):
        sql1, (i1, f1) = c1
        sql2, (i2, f2) = c2
        out = execute_sql(
            make_catalog(rows), f"SELECT * FROM t WHERE {sql1} {connector} {sql2}"
        )
        combine = (lambda r: f1(r[i1]) and f2(r[i2])) if connector == "AND" else (
            lambda r: f1(r[i1]) or f2(r[i2])
        )
        expected = [r for r in rows if combine(r)]
        assert sorted(out.rows) == sorted(expected)

    @given(tables(), comparisons())
    @settings(max_examples=100, deadline=None)
    def test_not(self, rows, comparison):
        sql_cond, (index, check) = comparison
        out = execute_sql(
            make_catalog(rows), f"SELECT * FROM t WHERE NOT ({sql_cond})"
        )
        expected = [r for r in rows if not check(r[index])]
        assert sorted(out.rows) == sorted(expected)


class TestAggregateProperties:
    @given(tables())
    @settings(max_examples=100, deadline=None)
    def test_group_count_sum(self, rows):
        out = execute_sql(
            make_catalog(rows),
            "SELECT c, COUNT(*) AS n, SUM(b) AS total FROM t GROUP BY c",
        )
        expected = {}
        for a, b, c in rows:
            n, total = expected.get(c, (0, 0))
            expected[c] = (n + 1, total + b)
        assert {r[0]: (r[1], r[2]) for r in out.rows} == expected

    @given(tables())
    @settings(max_examples=100, deadline=None)
    def test_global_min_max(self, rows):
        out = execute_sql(
            make_catalog(rows), "SELECT MIN(b) AS lo, MAX(b) AS hi FROM t"
        )
        if rows:
            assert out.rows == ((min(r[1] for r in rows), max(r[1] for r in rows)),)
        else:
            assert out.rows == ((None, None),)

    @given(tables(), st.integers(-3, 3))
    @settings(max_examples=100, deadline=None)
    def test_having(self, rows, cutoff):
        out = execute_sql(
            make_catalog(rows),
            f"SELECT c FROM t GROUP BY c HAVING SUM(b) >= {cutoff}",
        )
        expected = set()
        totals = {}
        for a, b, c in rows:
            totals[c] = totals.get(c, 0) + b
        expected = {c for c, total in totals.items() if total >= cutoff}
        assert set(out.column_values("c")) == expected


class TestOrderLimitProperties:
    @given(tables(), st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_order_by_then_limit(self, rows, n):
        out = execute_sql(
            make_catalog(rows), f"SELECT a FROM t ORDER BY a DESC, b ASC LIMIT {n}"
        )
        expected = [
            (r[0],)
            for r in sorted(rows, key=lambda r: (-r[0], r[1]))
        ][:n]
        assert list(out.rows) == expected

    @given(tables())
    @settings(max_examples=80, deadline=None)
    def test_distinct(self, rows):
        out = execute_sql(make_catalog(rows), "SELECT DISTINCT c FROM t")
        assert sorted(out.column_values("c")) == sorted({r[2] for r in rows})


class TestJoinProperties:
    @given(tables(), tables())
    @settings(max_examples=80, deadline=None)
    def test_self_equi_join_size(self, rows, rows2):
        c = Catalog()
        c.register("t", Relation.from_rows(list(COLUMNS), rows))
        c.register("u", Relation.from_rows(["a2", "b2", "c2"], rows2))
        out = execute_sql(
            c, "SELECT * FROM t JOIN u ON t.a = u.a2"
        )
        from collections import Counter

        lc = Counter(r[0] for r in rows)
        rc = Counter(r[0] for r in rows2)
        assert out.num_rows == sum(lc[k] * rc[k] for k in lc)
