"""Unit + property tests for the join algorithms.

The load-bearing invariant: hash join, merge join and the nested-loop join
with an equality predicate must produce identical bags on any input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.relational.joins import (
    JoinCounters,
    cross_product,
    hash_join,
    merge_join,
    nested_loop_join,
    semi_join,
)
from repro.relational.relation import Relation


@pytest.fixture
def left():
    return Relation.from_rows(
        ["a", "b"], [("x", 1), ("y", 2), ("z", 2), ("w", None)]
    )


@pytest.fixture
def right():
    return Relation.from_rows(
        ["b", "c"], [(2, "p"), (2, "q"), (3, "r"), (None, "s")]
    )


class TestHashJoin:
    def test_basic(self, left, right):
        out = hash_join(left, right, keys=[("b", "b")])
        assert sorted(out.rows) == [
            ("y", 2, 2, "p"),
            ("y", 2, 2, "q"),
            ("z", 2, 2, "p"),
            ("z", 2, 2, "q"),
        ]

    def test_null_never_matches(self, left, right):
        out = hash_join(left, right, keys=[("b", "b")])
        assert all(None not in row for row in out.rows)

    def test_single_string_key(self):
        a = Relation.from_rows(["k", "v"], [("a", 1)])
        b = Relation.from_rows(["k", "w"], [("a", 2)])
        out = hash_join(a.rename({"v": "v1"}), b.rename({"w": "v2"}), keys="k")
        assert out.num_rows == 1

    def test_prefixes_qualify_columns(self, left, right):
        out = hash_join(left, right, keys=[("b", "b")], prefixes=("L", "R"))
        assert out.column_names == ("L.a", "L.b", "R.b", "R.c")

    def test_output_order_is_left_then_right_regardless_of_build_side(self):
        small = Relation.from_rows(["a"], [(1,)])
        big = Relation.from_rows(["a2", "pad"], [(1, i) for i in range(5)])
        out = hash_join(big, small, keys=[("a2", "a")])
        assert out.column_names == ("a2", "pad", "a")
        out = hash_join(small, big, keys=[("a", "a2")])
        assert out.column_names == ("a", "a2", "pad")

    def test_multi_key(self):
        a = Relation.from_rows(["x", "y"], [(1, 1), (1, 2)])
        b = Relation.from_rows(["x2", "y2"], [(1, 1), (1, 3)])
        out = hash_join(a, b, keys=[("x", "x2"), ("y", "y2")])
        assert out.rows == ((1, 1, 1, 1),)

    def test_counters(self, left, right):
        c = JoinCounters()
        hash_join(left, right, keys=[("b", "b")], counters=c)
        assert c.output_rows == 4
        assert c.probes > 0
        assert "output_rows=4" in repr(c)

    def test_empty_key_spec_rejected(self, left, right):
        with pytest.raises(PlanError):
            hash_join(left, right, keys=[])


class TestMergeJoin:
    def test_matches_hash_join(self, left, right):
        h = hash_join(left, right, keys=[("b", "b")])
        m = merge_join(left, right, keys=[("b", "b")])
        assert sorted(h.rows) == sorted(m.rows)

    def test_prefixes(self, left, right):
        out = merge_join(left, right, keys=[("b", "b")], prefixes=("L", "R"))
        assert out.column_names == ("L.a", "L.b", "R.b", "R.c")

    def test_counters(self, left, right):
        c = JoinCounters()
        merge_join(left, right, keys=[("b", "b")], counters=c)
        assert c.output_rows == 4


class TestNestedLoop:
    def test_theta_join(self, left, right):
        out = nested_loop_join(
            left, right, lambda l, r: l[1] is not None and r[0] is not None and l[1] < r[0]
        )
        # b=1 < {2,2,3} -> 3 rows; b=2 < 3 -> 2 rows
        assert out.num_rows == 5

    def test_counter_counts_all_pairs(self, left, right):
        c = JoinCounters()
        nested_loop_join(left, right, lambda l, r: False, counters=c)
        assert c.comparisons == 16

    def test_cross_product(self, left, right):
        assert cross_product(left, right).num_rows == 16


class TestSemiJoin:
    def test_semi(self, left, right):
        out = semi_join(left, right, keys=[("b", "b")])
        assert sorted(out.column_values("a")) == ["y", "z"]
        assert out.column_names == ("a", "b")

    def test_semi_null(self, left, right):
        out = semi_join(left, right, keys=[("b", "b")])
        assert ("w", None) not in out.rows


@st.composite
def join_inputs(draw):
    keys = st.integers(min_value=0, max_value=5)
    lrows = draw(st.lists(st.tuples(keys, st.integers(0, 9)), max_size=12))
    rrows = draw(st.lists(st.tuples(keys, st.integers(0, 9)), max_size=12))
    left = Relation.from_rows(["k", "v"], lrows)
    right = Relation.from_rows(["k2", "w"], rrows)
    return left, right


class TestJoinEquivalenceProperties:
    @given(join_inputs())
    @settings(max_examples=80, deadline=None)
    def test_hash_merge_nested_agree(self, inputs):
        left, right = inputs
        h = hash_join(left, right, keys=[("k", "k2")])
        m = merge_join(left, right, keys=[("k", "k2")])
        n = nested_loop_join(left, right, lambda l, r: l[0] == r[0])
        assert sorted(h.rows) == sorted(m.rows) == sorted(n.rows)

    @given(join_inputs())
    @settings(max_examples=40, deadline=None)
    def test_join_size_formula(self, inputs):
        left, right = inputs
        h = hash_join(left, right, keys=[("k", "k2")])
        from collections import Counter

        lc = Counter(left.column_values("k"))
        rc = Counter(right.column_values("k2"))
        expected = sum(lc[k] * rc[k] for k in lc)
        assert h.num_rows == expected


class TestLeftOuterJoin:
    def test_unmatched_left_rows_padded(self, left, right):
        from repro.relational.joins import left_outer_join

        out = left_outer_join(left, right, keys=[("b", "b")])
        # x(b=1) and w(b=None) have no match: padded rows survive.
        padded = [r for r in out.rows if r[2] is None]
        assert sorted(r[0] for r in padded) == ["w", "x"]
        # matched rows identical to the inner join
        inner = hash_join(left, right, keys=[("b", "b")])
        matched = [r for r in out.rows if r[2] is not None]
        assert sorted(matched) == sorted(inner.rows)

    def test_null_left_key_still_survives(self, left, right):
        from repro.relational.joins import left_outer_join

        out = left_outer_join(left, right, keys=[("b", "b")])
        assert ("w", None, None, None) in out.rows

    def test_counters(self, left, right):
        from repro.relational.joins import left_outer_join

        c = JoinCounters()
        out = left_outer_join(left, right, keys=[("b", "b")], counters=c)
        assert c.probes == 4
        assert c.output_rows == len(out)

    def test_prefixes(self, left, right):
        from repro.relational.joins import left_outer_join

        out = left_outer_join(left, right, keys=[("b", "b")], prefixes=("L", "R"))
        assert out.column_names == ("L.a", "L.b", "R.b", "R.c")
