"""Unit tests for the scalar expression language."""

import pytest

from repro.errors import PlanError, UnknownColumnError
from repro.relational.expressions import (
    BinaryOp,
    FunctionCall,
    col,
    const,
    maximum,
    minimum,
)
from repro.relational.schema import Schema

SCHEMA = Schema(["a", "norm", "w"])
ROW = ("x", 10, 2.5)


def evaluate(expr, row=ROW, schema=SCHEMA):
    return expr.bind(schema)(row)


class TestLeaves:
    def test_column_ref(self):
        assert evaluate(col("norm")) == 10

    def test_column_ref_unknown(self):
        with pytest.raises(UnknownColumnError):
            col("zzz").bind(SCHEMA)

    def test_constant(self):
        assert evaluate(const(7)) == 7

    def test_columns_introspection(self):
        assert col("a").columns() == ("a",)
        assert const(1).columns() == ()


class TestArithmetic:
    def test_add(self):
        assert evaluate(col("norm") + 5) == 15

    def test_radd(self):
        assert evaluate(5 + col("norm")) == 15

    def test_sub(self):
        assert evaluate(col("norm") - 1) == 9

    def test_rsub(self):
        assert evaluate(100 - col("norm")) == 90

    def test_mul(self):
        assert evaluate(col("norm") * 0.8) == pytest.approx(8.0)

    def test_rmul(self):
        assert evaluate(0.8 * col("norm")) == pytest.approx(8.0)

    def test_div(self):
        assert evaluate(col("norm") / 4) == pytest.approx(2.5)

    def test_nested(self):
        expr = (col("norm") * 2 + col("w")) / 2
        assert evaluate(expr) == pytest.approx(11.25)


class TestComparisons:
    def test_ge(self):
        assert evaluate(col("norm") >= 10) is True
        assert evaluate(col("norm") >= 11) is False

    def test_gt_le_lt(self):
        assert evaluate(col("norm") > 9)
        assert evaluate(col("norm") <= 10)
        assert not evaluate(col("norm") < 10)

    def test_eq_ne(self):
        assert evaluate(col("a").eq("x"))
        assert evaluate(col("a").ne("y"))

    def test_and_or(self):
        both = (col("norm") >= 10).and_(col("w") > 2)
        either = (col("norm") >= 99).or_(col("w") > 2)
        assert evaluate(both)
        assert evaluate(either)

    def test_columns_of_binary(self):
        expr = col("a").eq(col("norm"))
        assert set(expr.columns()) == {"a", "norm"}


class TestFunctions:
    def test_maximum(self):
        assert evaluate(maximum(col("norm"), col("w"), 3)) == 10

    def test_minimum(self):
        assert evaluate(minimum(col("norm"), col("w"))) == 2.5

    def test_zero_arg_function_rejected(self):
        with pytest.raises(PlanError):
            FunctionCall("f", max, ())

    def test_function_columns(self):
        assert set(maximum(col("a"), col("w")).columns()) == {"a", "w"}


class TestRepr:
    def test_binary_repr(self):
        assert repr(col("norm") * 0.8) == "(norm * 0.8)"

    def test_function_repr(self):
        assert repr(maximum(col("a"), 1)) == "MAX(a, 1)"
