"""Round-trip property tests: parse(to_sql(ast)) must reproduce the AST."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.sql.ast import (
    Binary,
    Call,
    ColumnName,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    Unary,
)
from repro.relational.sql.parser import parse
from repro.relational.sql.unparser import expr_to_sql, to_sql

NAMES = st.sampled_from(["a", "b", "c", "w", "total"])


@st.composite
def exprs(draw, depth=0):
    if depth >= 3:
        choice = draw(st.sampled_from(["col", "lit"]))
    else:
        choice = draw(
            st.sampled_from(["col", "lit", "binary", "not", "isnull", "in"])
        )
    if choice == "col":
        qualifier = draw(st.sampled_from([None, "t", "u"]))
        return ColumnName(draw(NAMES), qualifier=qualifier)
    if choice == "lit":
        return Literal(
            draw(st.one_of(st.integers(-9, 9), st.sampled_from(["x", "y z"]),
                           st.booleans(), st.none()))
        )
    if choice == "binary":
        op = draw(st.sampled_from(["OR", "AND", "=", "<", ">=", "+", "*", "-"]))
        return Binary(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))
    if choice == "not":
        return Unary("NOT", draw(exprs(depth + 1)))
    if choice == "isnull":
        kind = draw(st.sampled_from(["ISNULL", "ISNOTNULL"]))
        return Unary(kind, ColumnName(draw(NAMES)))
    members = draw(st.lists(st.integers(0, 9), min_size=1, max_size=3))
    return Call(
        "__IN__",
        tuple([ColumnName(draw(NAMES))] + [Literal(v) for v in members]),
    )


@st.composite
def statements(draw):
    use_aggregates = draw(st.booleans())
    if use_aggregates:
        group_cols = draw(st.lists(NAMES, min_size=1, max_size=2, unique=True))
        items = [SelectItem(ColumnName(c)) for c in group_cols]
        items.append(
            SelectItem(Call("SUM", (ColumnName(draw(NAMES)),)), alias="total")
        )
        group_by = [ColumnName(c) for c in group_cols]
        having = draw(st.one_of(st.none(), st.just(
            Binary(">=", ColumnName("total"), Literal(draw(st.integers(0, 5))))
        )))
    else:
        cols = draw(st.lists(NAMES, min_size=1, max_size=3, unique=True))
        items = [SelectItem(ColumnName(c)) for c in cols]
        group_by, having = [], None

    joins = []
    if draw(st.booleans()):
        joins.append(
            JoinClause(
                TableRef("u", None),
                ((ColumnName("a", "t"), ColumnName("a", "u")),),
                outer=draw(st.booleans()),
            )
        )
    where = draw(st.one_of(st.none(), exprs()))
    order_by = [
        OrderItem(ColumnName(c), descending=draw(st.booleans()))
        for c in draw(st.lists(NAMES, max_size=2, unique=True))
    ]
    limit = draw(st.one_of(st.none(), st.integers(0, 99)))
    return SelectStatement(
        items=items,
        table=TableRef("t", "t" if joins else None),
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        distinct=draw(st.booleans()) and not use_aggregates,
    )


class TestExpressionRoundTrip:
    @given(exprs())
    @settings(max_examples=300, deadline=None)
    def test_expr_round_trip(self, expr):
        sql = f"SELECT a FROM t WHERE {expr_to_sql(expr)}"
        reparsed = parse(sql).where
        assert reparsed == expr, f"{expr_to_sql(expr)!r} reparsed as {reparsed!r}"

    def test_precedence_parens(self):
        # (a OR b) AND c must keep its parentheses.
        expr = Binary("AND", Binary("OR", ColumnName("a"), ColumnName("b")),
                      ColumnName("c"))
        text = expr_to_sql(expr)
        assert text == "(a OR b) AND c"
        assert parse(f"SELECT a FROM t WHERE {text}").where == expr

    def test_string_escaping(self):
        expr = Binary("=", ColumnName("a"), Literal("o'brien"))
        text = expr_to_sql(expr)
        assert "''" in text
        assert parse(f"SELECT a FROM t WHERE {text}").where == expr


class TestStatementRoundTrip:
    @given(statements())
    @settings(max_examples=200, deadline=None)
    def test_statement_round_trip(self, statement):
        sql = to_sql(statement)
        assert parse(sql) == statement, sql

    def test_doc_example(self):
        sql = "SELECT a, SUM(w) AS total FROM t GROUP BY a HAVING SUM(w) >= 5"
        assert to_sql(parse(sql)) == sql

    def test_left_join_rendered(self):
        sql = "SELECT a FROM t t LEFT JOIN u ON t.a = u.a"
        assert to_sql(parse(sql)) == sql
