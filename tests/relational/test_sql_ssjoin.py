"""SSJOIN SQL surface: grammar, round-trips, compilation, and equivalence.

Covers the extended grammar ``SSJOIN t s ON OVERLAP(b) >= e [AND ...]``
end to end: parser/unparser fixpoint, lowering of the paper's Example 2
bound shapes to :class:`repro.core.predicate.Bound` conjuncts, plan
shape, static verification, and pair-level equivalence between
``execute_sql`` and the :func:`repro.core.ssjoin.ssjoin` facade.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicate import (
    AbsoluteBound,
    LeftNormBound,
    MaxNormBound,
    OverlapPredicate,
    RightNormBound,
    SumNormBound,
)
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import ssjoin
from repro.errors import AnalysisError, PlanError
from repro.relational.catalog import Catalog
from repro.relational.context import ExecutionContext
from repro.relational.plan import (
    Distinct,
    GroupBy,
    Limit,
    OrderBy,
    Project,
    Select,
    SSJoinNode,
    TableScan,
    explain,
)
from repro.relational.relation import Relation
from repro.relational.sql.compiler import compile_ssjoin_plan, execute_sql
from repro.relational.sql.lexer import SqlSyntaxError
from repro.relational.sql.parser import parse
from repro.relational.sql.unparser import to_sql
from repro.analysis.sql_check import check_sql, verify_sql


ROWS = [
    ("r1", "apple", 1.0),
    ("r1", "pie", 1.0),
    ("r1", "crust", 1.0),
    ("r2", "apple", 1.0),
    ("r2", "pie", 1.0),
    ("r2", "tin", 1.0),
    ("r3", "pumpkin", 1.0),
    ("r3", "pie", 1.0),
    ("r4", "quince", 1.0),
]


def make_catalog():
    catalog = Catalog()
    catalog.register("t", Relation.from_rows(["a", "b", "w"], ROWS, name="t"))
    catalog.register(
        "u",
        Relation.from_rows(
            ["a", "b", "w"],
            [("s1", "apple", 1.0), ("s1", "pie", 1.0), ("s2", "quince", 1.0)],
            name="u",
        ),
    )
    return catalog


class TestParsing:
    def test_absolute_bound(self):
        st_ = parse("SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 2")
        (clause,) = st_.ssjoins
        assert clause.table.table == "t"
        assert clause.table.alias == "s"
        assert clause.element_column == "b"
        assert len(clause.bounds) == 1

    def test_conjunction_of_bounds(self):
        st_ = parse(
            "SELECT * FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 0.8 * r.norm AND OVERLAP(b) >= 0.8 * s.norm"
        )
        assert len(st_.ssjoins[0].bounds) == 2

    def test_overlap_stays_a_valid_column_name(self):
        # OVERLAP is contextual, not a keyword: the result schema's
        # ``overlap`` column must remain referenceable.
        st_ = parse(
            "SELECT overlap FROM t r SSJOIN t s ON OVERLAP(b) >= 2 "
            "WHERE overlap >= 3"
        )
        assert st_.items[0].expr.name == "overlap"
        assert st_.where is not None

    def test_mismatched_element_columns_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "SELECT * FROM t r SSJOIN t s "
                "ON OVERLAP(b) >= 2 AND OVERLAP(c) >= 2"
            )

    def test_only_ge_comparison_allowed(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t r SSJOIN t s ON OVERLAP(b) > 2")

    def test_on_required(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t r SSJOIN t s")


SSJOIN_QUERIES = [
    "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 2",
    "SELECT * FROM t r SSJOIN u s ON OVERLAP(b) >= 1",
    "SELECT a_r, a_s FROM t r SSJOIN t s ON OVERLAP(b) >= 0.8 * r.norm",
    "SELECT * FROM t r SSJOIN t s "
    "ON OVERLAP(b) >= 0.5 * r.norm AND OVERLAP(b) >= 0.5 * s.norm",
    "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 0.7 * MAXNORM()",
    "SELECT DISTINCT a_r FROM t r SSJOIN t s ON OVERLAP(b) >= 2 "
    "WHERE a_r < a_s ORDER BY a_r LIMIT 10",
    "SELECT a_r AS lhs, a_s AS rhs, overlap FROM t r SSJOIN t s "
    "ON OVERLAP(b) >= 2 ORDER BY overlap DESC",
    "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 0.5 * r.norm + "
    "0.5 * s.norm - 1",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", SSJOIN_QUERIES)
    def test_parse_unparse_fixpoint(self, sql):
        statement = parse(sql)
        rendered = to_sql(statement)
        assert parse(rendered) == statement
        # Second render is a fixpoint: unparse is canonical.
        assert to_sql(parse(rendered)) == rendered

    @given(
        fraction=st.sampled_from([0.5, 0.75, 0.8]),
        two_sided=st.booleans(),
        alias_pair=st.sampled_from([("r", "s"), ("x", "y")]),
    )
    @settings(max_examples=50, deadline=None)
    def test_generated_bounds_round_trip(self, fraction, two_sided, alias_pair):
        lhs, rhs = alias_pair
        bound = f"{fraction!r} * {lhs}.norm"
        sql = f"SELECT * FROM t {lhs} SSJOIN t {rhs} ON OVERLAP(b) >= {bound}"
        if two_sided:
            sql += f" AND OVERLAP(b) >= {fraction!r} * {rhs}.norm"
        statement = parse(sql)
        assert parse(to_sql(statement)) == statement


class TestCompilation:
    def test_plan_shape(self):
        statement = parse(
            "SELECT DISTINCT a_r FROM t r SSJOIN t s ON OVERLAP(b) >= 2 "
            "WHERE a_r < a_s ORDER BY a_r LIMIT 10"
        )
        plan = compile_ssjoin_plan(statement, make_catalog())
        assert isinstance(plan, Limit)
        distinct = plan.children[0]
        assert isinstance(distinct, Distinct)
        project = distinct.children[0]
        assert isinstance(project, Project)
        order = project.children[0]
        assert isinstance(order, OrderBy)
        select = order.children[0]
        assert isinstance(select, Select)
        node = select.children[0]
        assert isinstance(node, SSJoinNode)
        # Self-join: both sides share one scan node.
        assert node.children[0] is node.children[1]
        assert isinstance(node.children[0], TableScan)

    def test_two_table_join_uses_two_scans(self):
        statement = parse("SELECT * FROM t r SSJOIN u s ON OVERLAP(b) >= 1")
        plan = compile_ssjoin_plan(statement, make_catalog())
        assert isinstance(plan, SSJoinNode)
        assert plan.children[0] is not plan.children[1]

    @pytest.mark.parametrize(
        "bound, expected",
        [
            ("2", AbsoluteBound),
            ("0.8 * r.norm", LeftNormBound),
            ("0.8 * s.norm", RightNormBound),
            ("0.7 * MAXNORM()", MaxNormBound),
            ("0.5 * r.norm + 0.5 * s.norm - 1", SumNormBound),
            ("r.norm - 2", LeftNormBound),
        ],
    )
    def test_bound_lowering(self, bound, expected):
        statement = parse(
            f"SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= {bound}"
        )
        plan = compile_ssjoin_plan(statement, make_catalog())
        assert isinstance(plan, SSJoinNode)
        assert isinstance(plan.predicate, OverlapPredicate)
        (lowered,) = plan.predicate.bounds
        assert isinstance(lowered, expected)

    def test_lowered_fractions_match(self):
        statement = parse(
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 0.8 * r.norm"
        )
        plan = compile_ssjoin_plan(statement, make_catalog())
        (lowered,) = plan.predicate.bounds
        assert lowered.fraction == pytest.approx(0.8)

    @pytest.mark.parametrize(
        "sql",
        [
            # non-linear bound
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= r.norm * s.norm",
            # MAXNORM mixed with a side norm
            "SELECT * FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 0.5 * MAXNORM() + 0.5 * r.norm",
            # unqualified norm is ambiguous
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 0.8 * norm",
            # qualifier matching neither side
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 0.8 * z.norm",
            # identical side labels
            "SELECT * FROM t r SSJOIN t r ON OVERLAP(b) >= 2",
            # only the 'b' element column is joinable
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(a) >= 2",
            # mixing with equi-joins is not supported
            "SELECT * FROM t r JOIN u ON r.a = u.a SSJOIN t s "
            "ON OVERLAP(b) >= 2",
        ],
    )
    def test_rejected_statements(self, sql):
        with pytest.raises(PlanError):
            compile_ssjoin_plan(parse(sql), make_catalog())

    def test_grouped_plan_shape(self):
        statement = parse(
            "SELECT a_r, COUNT(*) AS n FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 2 GROUP BY a_r ORDER BY a_r"
        )
        plan = compile_ssjoin_plan(statement, make_catalog())
        assert isinstance(plan, OrderBy)
        project = plan.children[0]
        assert isinstance(project, Project)
        grouped = project.children[0]
        assert isinstance(grouped, GroupBy)
        assert grouped.keys == ["a_r"]
        assert isinstance(grouped.children[0], SSJoinNode)

    def test_grouped_plan_has_no_boundary_adapter(self):
        # PR-9 acceptance: GROUP BY + ORDER BY over SSJoin output executes
        # end-to-end on the batch protocol — EXPLAIN must show every
        # operator vectorized, with no row-boundary adapter anywhere.
        statement = parse(
            "SELECT a_r, COUNT(*) AS n, SUM(overlap) AS s FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 2 GROUP BY a_r HAVING COUNT(*) >= 1 "
            "ORDER BY n DESC, a_r"
        )
        catalog = make_catalog()
        plan = compile_ssjoin_plan(statement, catalog)
        text = explain(
            plan, context=ExecutionContext(catalog=catalog, batch_size=4096)
        )
        assert "row (boundary adapter)" not in text
        assert "vectorized hash aggregate" in text
        assert "vectorized sort (blocking)" in text


class TestExecution:
    def test_matches_facade_pairs_exactly(self):
        catalog = make_catalog()
        out = execute_sql(
            catalog, "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= 2"
        )
        prepared = PreparedRelation.from_relation(catalog.get("t"))
        expected = ssjoin(
            prepared, prepared, OverlapPredicate.absolute(2.0)
        )
        assert set(out.rows) == set(expected.pairs)
        assert tuple(out.schema.names) == (
            "a_r", "a_s", "overlap", "norm_r", "norm_s",
        )

    def test_two_sided_jaccard_style_bounds(self):
        catalog = make_catalog()
        out = execute_sql(
            catalog,
            "SELECT a_r, a_s FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 0.6 * r.norm AND OVERLAP(b) >= 0.6 * s.norm "
            "WHERE a_r < a_s",
        )
        prepared = PreparedRelation.from_relation(catalog.get("t"))
        expected = ssjoin(
            prepared, prepared, OverlapPredicate.two_sided(0.6)
        )
        want = {(a, b) for a, b, *_ in expected.pairs if a < b}
        assert set(out.rows) == want

    def test_post_filter_order_and_limit(self):
        out = execute_sql(
            make_catalog(),
            "SELECT a_r, a_s, overlap FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 2 WHERE a_r < a_s ORDER BY overlap DESC, a_r "
            "LIMIT 1",
        )
        assert out.rows == (("r1", "r2", 2.0),)

    def test_cross_table(self):
        out = execute_sql(
            make_catalog(),
            "SELECT a_r, a_s FROM t r SSJOIN u s ON OVERLAP(b) >= 2 ",
        )
        assert set(out.rows) == {("r1", "s1"), ("r2", "s1")}

    def test_verify_flag_runs_static_checks(self):
        with pytest.raises(AnalysisError):
            execute_sql(
                make_catalog(),
                "SELECT nope FROM t r SSJOIN t s ON OVERLAP(b) >= 2",
                verify=True,
            )

    def test_grouped_match_counts(self):
        # Pairs with overlap >= 2: (r1,r1), (r1,r2), (r2,r1), (r2,r2),
        # (r3,r3) — so per-record match counts are r1:2, r2:2, r3:1.
        out = execute_sql(
            make_catalog(),
            "SELECT a_r, COUNT(*) AS n FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 2 GROUP BY a_r ORDER BY a_r",
        )
        assert out.rows == (("r1", 2), ("r2", 2), ("r3", 1))
        assert tuple(out.schema.names) == ("a_r", "n")

    def test_global_aggregate_over_pairs(self):
        out = execute_sql(
            make_catalog(),
            "SELECT COUNT(*) AS pairs, SUM(overlap) AS total "
            "FROM t r SSJOIN t s ON OVERLAP(b) >= 2",
        )
        assert out.rows == ((5, 12.0),)

    def test_grouped_having_filter(self):
        out = execute_sql(
            make_catalog(),
            "SELECT a_r FROM t r SSJOIN t s ON OVERLAP(b) >= 2 "
            "GROUP BY a_r HAVING COUNT(*) >= 2 ORDER BY a_r",
        )
        assert out.rows == (("r1",), ("r2",))

    @pytest.mark.parametrize("batch_size", [0, 1, 7, 4096, None])
    def test_grouped_results_identical_across_batch_sizes(self, batch_size):
        out = execute_sql(
            make_catalog(),
            "SELECT a_r, COUNT(*) AS n, SUM(overlap) AS s FROM t r "
            "SSJOIN t s ON OVERLAP(b) >= 2 GROUP BY a_r ORDER BY s DESC, a_r",
            batch_size=batch_size,
        )
        assert out.rows == (("r1", 2, 5.0), ("r2", 2, 5.0), ("r3", 1, 2.0))


class TestStaticVerification:
    def test_clean_statement_passes(self):
        report = verify_sql(
            make_catalog(),
            "SELECT a_r, overlap FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 0.8 * r.norm",
        )
        assert report.ok

    def test_unknown_output_column_is_pv101(self):
        report = verify_sql(
            make_catalog(), "SELECT nope FROM t r SSJOIN t s ON OVERLAP(b) >= 2"
        )
        assert [d.rule for d in report.errors()] == ["PV101"]

    def test_structural_violation_is_ssj110(self):
        report = verify_sql(
            make_catalog(),
            "SELECT * FROM t r SSJOIN t s ON OVERLAP(b) >= r.norm * s.norm",
        )
        assert [d.rule for d in report.errors()] == ["SSJ110"]

    def test_missing_set_columns_is_ssj111(self):
        catalog = make_catalog()
        catalog.register(
            "flat", Relation.from_rows(["a", "w"], [("x", 1.0)], name="flat")
        )
        report = verify_sql(
            catalog, "SELECT * FROM flat r SSJOIN flat s ON OVERLAP(b) >= 2"
        )
        assert "SSJ111" in [d.rule for d in report.errors()]

    def test_grouped_statement_passes(self):
        report = verify_sql(
            make_catalog(),
            "SELECT a_r, SUM(overlap) AS s FROM t r SSJOIN t s "
            "ON OVERLAP(b) >= 2 GROUP BY a_r HAVING COUNT(*) >= 2",
        )
        assert report.ok

    def test_check_sql_raises(self):
        with pytest.raises(AnalysisError):
            check_sql(
                make_catalog(),
                "SELECT nope FROM t r SSJOIN t s ON OVERLAP(b) >= 2",
            )
