"""End-to-end tests for the command-line interface."""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def corpus(tmp_path):
    path = tmp_path / "input.txt"
    path.write_text(
        "microsoft corporation\nmicrosoft corp\nmcrosoft corp\n"
        "oracle corp\noracle corporation\n\n"  # blank line must be ignored
    )
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_similarity_rejected(self, corpus):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dedupe", "--input", str(corpus), "--similarity", "levenshtein"]
            )


class TestDedupe:
    def test_edit_dedupe_to_file(self, corpus, tmp_path):
        out = tmp_path / "pairs.tsv"
        code = main([
            "dedupe", "--input", str(corpus), "--similarity", "edit",
            "--threshold", "0.8", "--out", str(out),
        ])
        assert code == 0
        lines = [l.split("\t") for l in out.read_text().splitlines()]
        assert ["mcrosoft corp", "microsoft corp"] in [l[:2] for l in lines]
        assert all(len(l) == 3 for l in lines)
        assert all(0 <= float(l[2]) <= 1 for l in lines)

    def test_dedupe_stdout(self, corpus, capsys):
        main(["dedupe", "--input", str(corpus), "--similarity", "jaccard",
              "--threshold", "0.3", "--weights", "unit"])
        captured = capsys.readouterr()
        assert "microsoft corp" in captured.out

    def test_metrics_to_stderr(self, corpus, capsys):
        main(["dedupe", "--input", str(corpus), "--similarity", "edit",
              "--threshold", "0.85", "--metrics"])
        captured = capsys.readouterr()
        assert "candidates=" in captured.err

    def test_two_file_join(self, corpus, tmp_path):
        right = tmp_path / "right.txt"
        right.write_text("microsooft corporation\nzzz qqq\n")
        out = tmp_path / "pairs.tsv"
        main(["dedupe", "--input", str(corpus), "--right", str(right),
              "--similarity", "edit", "--threshold", "0.85", "--out", str(out)])
        assert "microsooft corporation" in out.read_text()

    @pytest.mark.parametrize("similarity", ["jaccard", "containment", "ges", "cosine"])
    def test_every_similarity_runs(self, corpus, tmp_path, similarity):
        out = tmp_path / "pairs.tsv"
        code = main(["dedupe", "--input", str(corpus), "--similarity", similarity,
                     "--threshold", "0.6", "--out", str(out)])
        assert code == 0

    @pytest.mark.parametrize("impl", ["basic", "prefix", "inline", "probe"])
    def test_every_implementation_runs(self, corpus, tmp_path, impl):
        out = tmp_path / "pairs.tsv"
        code = main(["dedupe", "--input", str(corpus), "--similarity", "jaccard",
                     "--threshold", "0.5", "--implementation", impl,
                     "--out", str(out)])
        assert code == 0


class TestMatch:
    def test_topk_lookup(self, corpus, tmp_path, capsys):
        queries = tmp_path / "q.txt"
        queries.write_text("microsooft corp\n")
        code = main(["match", "--queries", str(queries),
                     "--references", str(corpus), "--k", "2",
                     "--threshold", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "microsooft corp\t" in out
        assert len(out.splitlines()) <= 2


class TestExplainAndGenerate:
    def test_explain_prints_plan(self, corpus, capsys):
        code = main(["explain", "--input", str(corpus), "--threshold", "0.8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SSJoin[" in out
        assert "cost model" in out

    def test_explain_golden_tree(self, corpus, capsys):
        """Golden output: the full operator tree with cost annotations."""
        main(["explain", "--input", str(corpus), "--threshold", "0.8"])
        out = capsys.readouterr().out
        operator_lines = [
            l for l in out.splitlines() if l.strip() and "--" not in l
        ]
        assert operator_lines == [
            "Project(a_r, a_s, similarity)",
            "  Select(((similarity + 1e-09) >= 0.8))",
            "    Extend(similarity := JR(overlap, norm_r, norm_s))",
            "      Select((a_r <> a_s))",
            "        SSJoin[auto](Overlap >= 0.8*R.norm AND Overlap >= 0.8*S.norm)",
            "          Prepared(input, groups=5, elements=10)",
            "          Prepared(input, groups=5, elements=10)",
        ]
        notes = [l.strip() for l in out.splitlines() if l.strip().startswith("--")]
        physical = [n for n in notes if n.startswith("-- physical: ")]
        assert physical and physical[0].endswith("(chosen by cost model)")
        costed = set()
        for n in notes:
            m = re.match(r"-- [* ]?\s*cost\[([a-z-]+)\] = \d+$", n)
            if m:
                costed.add(m.group(1))
        assert {"basic", "prefix", "inline", "probe"} <= costed
        # Every node annotates its execution protocol (Layer 8).
        batch_notes = [n for n in notes if n.startswith("-- batch: ")]
        assert len(batch_notes) == 7
        assert any("vectorized" in n for n in batch_notes)
        assert any("columnar source" in n for n in batch_notes)
        assert all(re.search(r"morsel=\d+$", n) for n in batch_notes)

    def test_explain_fig12_golden_snapshot(self, tmp_path, capsys):
        """The Fig-12 workload's plan, pinned (costs masked to N).

        CI's golden-plan job runs the same pipeline; regenerate with:
        ``repro generate --rows 200 --seed 20060403 --out fig12.txt &&
        repro explain --input fig12.txt --threshold 0.8 |
        sed -E 's/= [0-9]+$/= N/' > tests/golden/explain_fig12.txt``
        """
        data = tmp_path / "fig12.txt"
        main(["generate", "--rows", "200", "--seed", "20060403",
              "--out", str(data)])
        capsys.readouterr()
        main(["explain", "--input", str(data), "--threshold", "0.8"])
        out = capsys.readouterr().out
        masked = re.sub(r"= \d+$", "= N", out, flags=re.MULTILINE)
        golden = Path(__file__).parent / "golden" / "explain_fig12.txt"
        assert masked == golden.read_text()

    def test_generate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "gen.txt"
        code = main(["generate", "--rows", "40", "--seed", "3", "--out", str(path)])
        assert code == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 40
        # Generated file is valid dedupe input.
        code = main(["dedupe", "--input", str(path), "--similarity", "edit",
                     "--threshold", "0.85", "--out", str(tmp_path / "p.tsv")])
        assert code == 0

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "--rows", "25", "--seed", "9", "--out", str(a)])
        main(["generate", "--rows", "25", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestSqlCommand:
    @pytest.fixture
    def tsv(self, tmp_path):
        path = tmp_path / "emp.tsv"
        path.write_text(
            "dept\tname\tsalary\n"
            "eng\tann\t120\n"
            "eng\tbob\t100\n"
            "ops\tcid\t\n"  # empty cell -> NULL
        )
        return path

    def test_select_where(self, tsv, capsys):
        code = main(["sql", "--table", f"emp={tsv}",
                     "--query", "SELECT name FROM emp WHERE salary >= 100 ORDER BY name"])
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["name", "ann", "bob"]

    def test_aggregate(self, tsv, capsys):
        main(["sql", "--table", f"emp={tsv}",
              "--query", "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept"])
        out = capsys.readouterr().out.splitlines()
        assert out == ["dept\tn", "eng\t2", "ops\t1"]

    def test_null_cell_roundtrip(self, tsv, capsys):
        main(["sql", "--table", f"emp={tsv}",
              "--query", "SELECT name FROM emp WHERE salary IS NULL"])
        out = capsys.readouterr().out.splitlines()
        assert out == ["name", "cid"]

    def test_join_two_tables(self, tsv, tmp_path, capsys):
        sites = tmp_path / "sites.tsv"
        sites.write_text("d\tcity\neng\tsea\n")
        main(["sql", "--table", f"emp={tsv}", "--table", f"sites={sites}",
              "--query",
              "SELECT e.name, s.city FROM emp e JOIN sites s ON e.dept = s.d "
              "ORDER BY name"])
        out = capsys.readouterr().out.splitlines()
        assert out == ["name\tcity", "ann\tsea", "bob\tsea"]

    def test_output_file(self, tsv, tmp_path):
        dest = tmp_path / "result.tsv"
        main(["sql", "--table", f"emp={tsv}",
              "--query", "SELECT COUNT(*) AS n FROM emp", "--out", str(dest)])
        assert dest.read_text() == "n\n3\n"

    def test_bad_table_spec(self, tsv):
        with pytest.raises(SystemExit):
            main(["sql", "--table", "nonsense", "--query", "SELECT 1 FROM t"])

    def test_empty_tsv_rejected(self, tmp_path):
        empty = tmp_path / "e.tsv"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["sql", "--table", f"t={empty}", "--query", "SELECT * FROM t"])
