"""Static SQL verification: rule coverage against the compiler's semantics."""

import pytest

from repro.analysis import check_sql, verify_sql
from repro.errors import AnalysisError
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.sql import execute_sql


@pytest.fixture
def catalog():
    c = Catalog()
    c.register(
        "orders",
        Relation.from_rows(
            ["order_id", "customer", "amount"],
            [(1, "ada", 10.0), (2, "bob", 7.5), (3, "ada", 2.5)],
        ),
    )
    c.register(
        "customers",
        Relation.from_rows(["customer", "city"], [("ada", "london")]),
    )
    return c


def rules(report):
    return sorted({d.rule for d in report})


GOOD_QUERIES = [
    "SELECT * FROM orders",
    "SELECT order_id, amount FROM orders WHERE amount >= 5 ORDER BY amount DESC",
    "SELECT customer, SUM(amount) AS total FROM orders GROUP BY customer "
    "HAVING SUM(amount) >= 5 ORDER BY total",
    "SELECT o.order_id, c.city FROM orders o JOIN customers c "
    "ON o.customer = c.customer",
    "SELECT COUNT(*) AS n FROM orders",
    "SELECT UPPER(customer) AS shout FROM orders",
]


@pytest.mark.parametrize("sql", GOOD_QUERIES)
def test_valid_queries_pass(catalog, sql):
    report = verify_sql(catalog, sql)
    assert report.ok, report.render()


BAD_QUERIES = [
    ("SELECT nope FROM orders", "PV101"),
    ("SELECT * FROM missing", "PV101"),
    ("SELECT order_id FROM orders WHERE ghost = 1", "PV101"),
    (
        "SELECT customer FROM orders o JOIN customers c ON o.customer = c.customer",
        "PV101",  # ambiguous bare reference
    ),
    ("SELECT amount, amount FROM orders", "PV102"),
    ("SELECT amount AS x, order_id AS x FROM orders", "PV102"),
    (
        "SELECT amount FROM orders GROUP BY customer",
        "PV103",  # non-key column outside an aggregate
    ),
    (
        "SELECT customer FROM orders GROUP BY customer HAVING amount >= 5",
        "PV103",  # HAVING on a non-key, non-aggregated column
    ),
    ("SELECT order_id FROM orders WHERE SUM(amount) >= 5", "PV103"),
    ("SELECT SQRT(amount) FROM orders", "PV107"),
    ("SELECT ABS(amount, amount) FROM orders", "PV107"),
    (
        "SELECT customer, SUM(amount) AS total FROM orders "
        "GROUP BY customer ORDER BY amount",
        "PV101",  # ORDER BY must use an output column of the aggregate
    ),
]


@pytest.mark.parametrize("sql,rule", BAD_QUERIES)
def test_invalid_queries_flag_the_rule(catalog, sql, rule):
    report = verify_sql(catalog, sql)
    assert rule in rules(report), f"{sql!r} -> {report.render()}"


def test_diagnostics_carry_location_and_hint(catalog):
    report = verify_sql(catalog, "SELECT nope FROM orders")
    (diag,) = report.errors()
    assert diag.location == "select[0]"
    assert "available" in diag.message


def test_check_sql_raises(catalog):
    with pytest.raises(AnalysisError) as exc:
        check_sql(catalog, "SELECT nope FROM orders")
    assert any(d.rule == "PV101" for d in exc.value.diagnostics)


def test_execute_sql_verify_flag(catalog):
    result = execute_sql(catalog, "SELECT order_id FROM orders", verify=True)
    assert len(result) == 3
    with pytest.raises(AnalysisError):
        execute_sql(catalog, "SELECT nope FROM orders", verify=True)
