"""Plan-verifier diagnostics: one passing and one failing case per rule."""

import pytest

from repro.analysis import verify_plan, check_plan
from repro.errors import AnalysisError
from repro.relational.aggregates import agg_count, agg_sum
from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.plan import (
    Custom,
    Extend,
    GroupBy,
    Groupwise,
    HashJoin,
    Limit,
    MaterializedInput,
    OrderBy,
    Project,
    Select,
    TableScan,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def catalog():
    c = Catalog()
    c.register(
        "orders",
        Relation.from_rows(
            ["order_id", "customer", "amount"],
            [(1, "ada", 10.0), (2, "bob", 7.5)],
        ),
    )
    c.register(
        "customers",
        Relation.from_rows(["customer", "city"], [("ada", "london")]),
    )
    return c


def rules(report):
    return sorted({d.rule for d in report})


# -- PV101: unknown column / table -----------------------------------------


def test_pv101_select_pass(catalog):
    plan = Select(TableScan("orders"), col("amount") >= 5.0)
    assert verify_plan(plan, catalog).ok


def test_pv101_select_unknown_column(catalog):
    plan = Select(TableScan("orders"), col("amonut") >= 5.0)
    report = verify_plan(plan, catalog)
    assert rules(report) == ["PV101"]
    (diag,) = report.errors()
    assert "amonut" in diag.message
    assert "Select" in diag.location


def test_pv101_unknown_table(catalog):
    report = verify_plan(TableScan("missing"), catalog)
    assert rules(report) == ["PV101"]
    assert "missing" in report.errors()[0].message


def test_pv101_location_names_the_failing_node(catalog):
    # The bad reference is two levels deep; the location path must place it.
    plan = Limit(
        OrderBy(Select(TableScan("orders"), col("ghost") >= 1), ["order_id"]),
        5,
    )
    report = verify_plan(plan, catalog)
    assert rules(report) == ["PV101"]
    loc = report.errors()[0].location
    assert "Select" in loc and "Scan" not in loc.split(">")[0]


def test_pv101_qualified_reference_after_join_passes(catalog):
    join = HashJoin(
        TableScan("orders"),
        TableScan("customers"),
        keys=["customer"],
        prefixes=("o", "c"),
    )
    plan = Select(join, col("o.amount") >= 1.0)
    assert verify_plan(plan, catalog).ok


# -- PV102: duplicate output columns ---------------------------------------


def test_pv102_projection_pass(catalog):
    plan = Project(TableScan("orders"), ["order_id", "amount"])
    assert verify_plan(plan, catalog).ok


def test_pv102_duplicate_projection(catalog):
    plan = Project(TableScan("orders"), ["amount", "amount"])
    report = verify_plan(plan, catalog)
    assert rules(report) == ["PV102"]


def test_pv102_extend_over_existing_column(catalog):
    plan = Extend(TableScan("orders"), "amount", col("order_id") + 1)
    report = verify_plan(plan, catalog)
    assert rules(report) == ["PV102"]
    assert "amount" in report.errors()[0].message


def test_pv102_identical_join_prefixes(catalog):
    plan = HashJoin(
        TableScan("orders"),
        TableScan("customers"),
        keys=["customer"],
        prefixes=("t", "t"),
    )
    report = verify_plan(plan, catalog)
    assert "PV102" in rules(report)


# -- PV103: HAVING references neither key nor aggregate ---------------------


def group_plan(having):
    return GroupBy(
        TableScan("orders"),
        keys=["customer"],
        aggregates=[agg_count("n"), agg_sum("total", col("amount"))],
        having=having,
    )


def test_pv103_having_pass(catalog):
    assert verify_plan(group_plan(col("n") >= 1), catalog).ok
    assert verify_plan(group_plan(col("total") >= 5.0), catalog).ok


def test_pv103_having_non_output_column(catalog):
    report = verify_plan(group_plan(col("amount") >= 5.0), catalog)
    assert rules(report) == ["PV103"]
    diag = report.errors()[0]
    assert "amount" in diag.message and "GroupBy" in diag.location


# -- PV104: join-key type conflict ------------------------------------------


def typed_input(name, coltype):
    return MaterializedInput(
        Relation(Schema([("k", coltype), ("v", None)]), [(None, None)]),
        name,
    )


def test_pv104_matching_key_types_pass(catalog):
    plan = HashJoin(typed_input("l", int), typed_input("r", int), keys=["k"])
    assert verify_plan(plan, catalog).ok


def test_pv104_conflicting_key_types(catalog):
    plan = HashJoin(typed_input("l", int), typed_input("r", str), keys=["k"])
    report = verify_plan(plan, catalog)
    assert rules(report) == ["PV104"]
    assert "int" in report.errors()[0].message
    assert "str" in report.errors()[0].message


# -- PV105: Limit over unordered input (warning) ----------------------------


def test_pv105_limit_over_orderby_pass(catalog):
    plan = Limit(OrderBy(TableScan("orders"), ["order_id"]), 1)
    report = verify_plan(plan, catalog)
    assert report.ok and not report.warnings()


def test_pv105_limit_over_unordered_input_warns(catalog):
    plan = Limit(TableScan("orders"), 1)
    report = verify_plan(plan, catalog)
    assert report.ok  # warning, not error
    assert rules(report) == ["PV105"]


# -- PV106: empty join keys --------------------------------------------------


def test_pv106_empty_join_keys(catalog):
    plan = HashJoin(TableScan("orders"), TableScan("customers"), keys=[])
    report = verify_plan(plan, catalog)
    assert "PV106" in rules(report)


# -- opaque nodes degrade gracefully ----------------------------------------


def test_schema_preserving_custom_node_is_probed(catalog):
    # An undeclared Custom node is probed against an empty input: the
    # identity transformer provably preserves the child schema, so a bad
    # reference above it IS caught (and a good one verifies clean).
    opaque = Custom(TableScan("orders"), lambda rel: rel, "opaque")
    report = verify_plan(Select(opaque, col("anything") >= 1), catalog)
    assert "PV101" in rules(report)
    assert verify_plan(Select(opaque, col("customer") >= 1), catalog).ok


def test_unprobeable_custom_node_is_not_guessed_at(catalog):
    def needs_rows(rel):
        rel.rows[0]  # raises on the empty probe
        return rel

    plan = Select(
        Custom(TableScan("orders"), needs_rows, "row-dependent"),
        col("anything") >= 1,
    )
    # Probing fails, the schema stays unknown, no PV101 can be proven.
    assert verify_plan(plan, catalog).ok


def test_custom_node_with_declared_schema_is_checked(catalog):
    declared = Custom(
        TableScan("orders"),
        lambda rel: Relation(Schema(["x"]), ()),
        "declared",
        declares=Schema(["x"]),
    )
    assert verify_plan(Select(declared, col("x") >= 1), catalog).ok
    report = verify_plan(Select(declared, col("y") >= 1), catalog)
    assert rules(report) == ["PV101"]


def test_groupwise_declares(catalog):
    node = Groupwise(
        TableScan("orders"),
        keys=["customer"],
        subquery=lambda rel: rel,
        declares=Schema(["customer", "rank"]),
    )
    assert verify_plan(Select(node, col("rank") >= 1), catalog).ok


# -- check_plan raises -------------------------------------------------------


def test_check_plan_raises_with_diagnostics(catalog):
    plan = Select(TableScan("orders"), col("nope") >= 1)
    with pytest.raises(AnalysisError) as exc:
        check_plan(plan, catalog)
    assert any(d.rule == "PV101" for d in exc.value.diagnostics)
    assert "PV101" in str(exc.value)


def test_check_plan_passes_clean(catalog):
    check_plan(Select(TableScan("orders"), col("amount") >= 1.0), catalog)


# -- schema propagation ------------------------------------------------------


def test_join_output_schema_disambiguates(catalog):
    join = HashJoin(TableScan("orders"), TableScan("customers"), keys=["customer"])
    schema = join.output_schema(catalog)
    assert schema is not None
    assert schema.names.count("customer") == 1
    assert "customer_2" in schema.names


def test_groupby_output_schema(catalog):
    schema = group_plan(None).output_schema(catalog)
    assert schema is not None
    assert list(schema.names) == ["customer", "n", "total"]


# -- SSJ113: batch/row protocol mix ------------------------------------------


def test_ssj113_shipped_operators_clean(catalog):
    """Every shipped operator's protocol declaration matches its kernels."""
    plan = Limit(
        Project(
            Extend(
                Select(TableScan("orders"), col("amount") >= 1.0),
                "doubled",
                col("amount") * 2,
            ),
            ["customer", "doubled"],
        ),
        5,
    )
    assert verify_plan(plan, catalog).ok


def test_ssj113_batch_claim_without_kernel(catalog):
    class FakeVectorized(TableScan):
        batch_protocol = "batch"

    report = verify_plan(Select(FakeVectorized("orders"), col("amount") >= 1.0),
                         catalog)
    assert "SSJ113" in rules(report)
    (diag,) = [d for d in report.errors() if d.rule == "SSJ113"]
    assert "inherits the row boundary adapter" in diag.message


def test_ssj113_kernel_without_batch_claim(catalog):
    class RowDeclaredStream(Select):
        batch_protocol = "row"

        def batches(self, ctx, size):  # pragma: no cover - never run
            raise NotImplementedError

    plan = RowDeclaredStream(TableScan("orders"), col("amount") >= 1.0)
    report = verify_plan(plan, catalog)
    assert "SSJ113" in rules(report)
    (diag,) = [d for d in report.errors() if d.rule == "SSJ113"]
    assert "bypasses its vectorized kernel" in diag.message
