"""End-to-end wiring: SSJoin(verify=True), selfcheck, and `repro analyze`."""

import json
from dataclasses import dataclass

import pytest

from repro.analysis import selfcheck
from repro.cli import main as cli_main
from repro.core import (
    OverlapPredicate,
    PreparedRelation,
    SSJoin,
    encode_pair,
    ssjoin,
)
from repro.core.predicate import Bound
from repro.errors import AnalysisError
from repro.tokenize.words import words


@pytest.fixture
def pair():
    left = PreparedRelation.from_strings(
        ["microsoft corp", "data cleaning primer"], words, name="L"
    )
    right = PreparedRelation.from_strings(
        ["microsoft corporation", "data cleaning"], words, name="R"
    )
    return left, right


@dataclass(frozen=True)
class OvershootingBound(Bound):
    alpha: float

    def value(self, left_norm, right_norm):
        return self.alpha

    def lower_bound_left(self, left_norm):
        return self.alpha + 5.0

    def lower_bound_right(self, right_norm):
        return self.alpha


def test_verify_true_executes_clean_plans(pair):
    left, right = pair
    pred = OverlapPredicate.absolute(1.0)
    for impl in ("basic", "prefix", "encoded-prefix", "auto"):
        result = SSJoin(left, right, pred).execute(impl, verify=True)
        assert ("microsoft corp", "microsoft corporation") in result.pair_set()


def test_verify_rejects_misordered_encoding_before_execution(pair):
    left, right = pair
    # Encodings built under two *separate* dictionaries: element ids
    # disagree, so the prefix equi-join would silently lose pairs.
    enc_left, _, _ = encode_pair(left, left)
    _, enc_right, _ = encode_pair(right, right)
    op = SSJoin(
        left, right, OverlapPredicate.absolute(1.0), encoding=(enc_left, enc_right)
    )
    with pytest.raises(AnalysisError) as exc:
        op.execute("encoded-prefix", verify=True)
    assert any(d.rule == "SSJ102" for d in exc.value.diagnostics)


def test_verify_rejects_mismatched_beta_bound(pair):
    left, right = pair
    bad = OverlapPredicate([OvershootingBound(1.0)])
    with pytest.raises(AnalysisError) as exc:
        SSJoin(left, right, bad).execute("prefix", verify=True)
    assert any(d.rule == "SSJ101" for d in exc.value.diagnostics)


def test_unverified_execution_still_runs_unsafe_plans(pair):
    """verify=False (the default) preserves the old permissive behavior."""
    left, right = pair
    bad = OverlapPredicate([OvershootingBound(1.0)])
    result = SSJoin(left, right, bad).execute("basic")
    assert result.implementation == "basic"


def test_functional_form_verify_flag(pair):
    left, right = pair
    result = ssjoin(
        left, right, OverlapPredicate.absolute(1.0),
        implementation="prefix", verify=True,
    )
    assert len(result) >= 1
    with pytest.raises(AnalysisError):
        ssjoin(
            left, right, OverlapPredicate([OvershootingBound(1.0)]),
            implementation="prefix", verify=True,
        )


def test_prebuilt_encoding_is_used_for_execution(pair):
    left, right = pair
    enc = encode_pair(left, right)
    result = SSJoin(
        left, right, OverlapPredicate.absolute(1.0), encoding=(enc[0], enc[1])
    ).execute("encoded-prefix", verify=True)
    assert ("microsoft corp", "microsoft corporation") in result.pair_set()


# -- the shipped engine audits clean ------------------------------------------


def test_selfcheck_is_clean():
    report = selfcheck(include_lint=False)
    assert report.ok, report.render()


# -- CLI ----------------------------------------------------------------------


def test_cli_analyze_passes(capsys):
    code = cli_main(["analyze", "--no-lint"])
    captured = capsys.readouterr()
    assert code == 0
    assert "analysis passed" in captured.err


def test_cli_analyze_json(capsys):
    code = cli_main(["analyze", "--no-lint", "--format", "json"])
    captured = capsys.readouterr()
    assert code == 0
    doc = json.loads(captured.out)
    assert doc["schema"] == "repro-analysis/v1"
    assert doc["ok"] is True


def test_cli_analyze_flags_bad_paths(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a):\n    return a\n")
    code = cli_main(["analyze", "--no-lint", str(bad)])
    captured = capsys.readouterr()
    assert code == 1
    assert "RL205" in captured.out
    assert "FAILED" in captured.err
