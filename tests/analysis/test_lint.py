"""Engine-hygiene lint: per-rule snippets plus the repo-clean gate."""

from pathlib import Path

from repro.analysis import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules(report):
    return sorted({d.rule for d in report})


# -- RL201: set iteration -----------------------------------------------------


def test_rl201_for_over_set_literal():
    report = lint_source("for x in {1, 2, 3}:\n    print(x)\n")
    assert rules(report) == ["RL201"]


def test_rl201_comprehension_over_set_call():
    report = lint_source("out = [x for x in set(items)]\n")
    assert rules(report) == ["RL201"]


def test_rl201_sorted_set_is_fine():
    assert lint_source("for x in sorted({1, 2}):\n    pass\n").ok
    assert lint_source("for x in [1, 2]:\n    pass\n").ok


def test_rl201_order_insensitive_sinks_are_fine():
    # Reductions whose result does not depend on arrival order: the set
    # iteration inside them is harmless and must not be flagged.
    assert lint_source("total = sum(v for v in set(vs))\n").ok
    assert lint_source("n = len([x for x in set(xs)])\n").ok
    assert lint_source("uniq = sorted(x for x in set(xs))\n").ok
    assert lint_source("m = max(x for x in {1, 2})\n").ok


def test_rl201_set_comprehension_result_is_fine():
    # A set comprehension's own iteration order is unobservable: the
    # result is again unordered (and checked wherever it is consumed).
    assert lint_source("uniq = {x for x in items}\n").ok


def test_rl201_keyed_min_max_is_still_flagged():
    # key= ties break by arrival order, so min/max stop being
    # order-insensitive the moment a key function appears.
    src = "m = max((x for x in set(xs)), key=f)\n"
    assert rules(lint_source(src)) == ["RL201"]


# -- RL202: unseeded random ---------------------------------------------------


def test_rl202_module_level_random():
    report = lint_source("import random\nx = random.shuffle(items)\n")
    assert rules(report) == ["RL202"]


def test_rl202_seeded_instance_is_fine():
    src = "import random\nrng = random.Random(42)\nrng.shuffle(items)\n"
    assert lint_source(src).ok


# -- RL203: float equality ----------------------------------------------------


def test_rl203_float_literal():
    report = lint_source("if x == 0.8:\n    pass\n")
    assert rules(report) == ["RL203"]


def test_rl203_floaty_identifier():
    report = lint_source("if threshold != computed:\n    pass\n")
    assert rules(report) == ["RL203"]


def test_rl203_string_comparison_is_fine():
    assert lint_source("if kind == 'weight':\n    pass\n").ok
    assert lint_source("if norm_kind == NORM_WEIGHT:\n    pass\n").ok
    assert lint_source("if threshold >= computed:\n    pass\n").ok


# -- RL204: mutable dataclass -------------------------------------------------


def test_rl204_mutable_dataclass():
    src = "from dataclasses import dataclass\n\n@dataclass\nclass Row:\n    a: int = 0\n"
    report = lint_source(src)
    assert rules(report) == ["RL204"]


def test_rl204_frozen_is_fine():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=True)\nclass Row:\n    a: int = 0\n"
    )
    assert lint_source(src).ok


def test_rl204_suppression_comment():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass  # repro: ignore[RL204] -- accumulator\n"
        "class Acc:\n    n: int = 0\n"
    )
    assert lint_source(src).ok


# -- RL205: missing annotations ----------------------------------------------


def test_rl205_missing_annotations():
    report = lint_source("def f(a, b):\n    return a\n")
    assert rules(report) == ["RL205"]
    (diag,) = report.errors()
    assert "'a'" in diag.message and "return type" in diag.message


def test_rl205_fully_annotated_is_fine():
    assert lint_source("def f(a: int, b: str = 'x') -> int:\n    return a\n").ok


def test_rl205_self_is_exempt():
    src = "class C:\n    def m(self) -> None:\n        pass\n"
    assert lint_source(src).ok


# -- suppression mechanics ----------------------------------------------------


def test_bare_suppression_covers_all_rules():
    assert lint_source("for x in {1, 2}:  # repro: ignore\n    pass\n").ok


def test_listed_suppression_is_rule_specific():
    src = "for x in {1, 2}:  # repro: ignore[RL203]\n    pass\n"
    assert rules(lint_source(src)) == ["RL201"]


def test_suppression_on_decorated_function():
    # The comment may sit on the def line even though the rule anchors
    # at the first decorator (and vice versa).
    src = "@decorator\ndef f(a):  # repro: ignore[RL205]\n    return a\n"
    assert lint_source(src).ok
    src = "@decorator  # repro: ignore[RL205]\ndef f(a):\n    return a\n"
    assert lint_source(src).ok


def test_suppression_on_any_line_of_multiline_statement():
    src = (
        "for x in set(\n"
        "    items\n"
        "):  # repro: ignore[RL201]\n"
        "    pass\n"
    )
    assert lint_source(src).ok


def test_file_level_suppression():
    src = "# repro: ignore-file[RL201]\nfor x in {1}:\n    pass\n"
    assert lint_source(src).ok
    # Bare ignore-file silences every rule.
    src = "# repro: ignore-file\nfor x in {1}:\n    pass\nif x == 0.5:\n    pass\n"
    assert lint_source(src).ok
    # Listed ignore-file stays rule-specific.
    src = "# repro: ignore-file[RL203]\nfor x in {1}:\n    pass\n"
    assert rules(lint_source(src)) == ["RL201"]


def test_syntax_error_reported_as_rl200():
    assert rules(lint_source("def broken(:\n")) == ["RL200"]


# -- diagnostics carry file locations ----------------------------------------


def test_location_is_path_and_line():
    report = lint_source("x = 1\nfor x in {1}:\n    pass\n", path="mod.py")
    assert report.errors()[0].location == "mod.py:2"


# -- the hot paths themselves are clean ---------------------------------------


def test_engine_hot_paths_are_lint_clean():
    report = lint_paths(
        [
            str(REPO_ROOT / "src" / "repro" / "core"),
            str(REPO_ROOT / "src" / "repro" / "relational"),
        ]
    )
    assert report.ok, report.render()
