"""SSJoin invariant linter: each SSJ rule with a passing and failing case."""

from dataclasses import dataclass

import pytest

from repro.analysis import KNOWN_IMPLEMENTATIONS, check_ssjoin, verify_ssjoin
from repro.core import (
    OverlapPredicate,
    PreparedRelation,
    encode_pair,
    reverse_frequency_ordering,
)
from repro.core.predicate import Bound
from repro.errors import AnalysisError
from repro.tokenize.words import words


@pytest.fixture
def pair():
    left = PreparedRelation.from_strings(
        ["data cleaning primer", "similarity joins", "primitive operator"],
        words,
        name="L",
    )
    right = PreparedRelation.from_strings(
        ["data cleaning", "similarity join operator"], words, name="R"
    )
    return left, right


def rules(report):
    return sorted({d.rule for d in report})


def error_rules(report):
    return sorted({d.rule for d in report.errors()})


# -- the shipped predicate families are clean on every implementation --------


@pytest.mark.parametrize("impl", KNOWN_IMPLEMENTATIONS)
@pytest.mark.parametrize(
    "predicate",
    [
        OverlapPredicate.absolute(1.5),
        OverlapPredicate.one_sided(0.6),
        OverlapPredicate.two_sided(0.5),
        OverlapPredicate.max_norm(0.4),
    ],
    ids=["absolute", "one_sided", "two_sided", "max_norm"],
)
def test_shipped_families_pass(pair, impl, predicate):
    left, right = pair
    report = verify_ssjoin(left, right, predicate, implementation=impl)
    assert report.ok, report.render()


def test_data_free_audit():
    report = verify_ssjoin(None, None, OverlapPredicate.absolute(2.0))
    assert report.ok


# -- SSJ101: beta-bound inconsistency ----------------------------------------


@dataclass(frozen=True)
class OvershootingBound(Bound):
    """lower_bound_left overshoots value: the β-mismatch fixture."""

    alpha: float

    def value(self, left_norm, right_norm):
        return self.alpha

    def lower_bound_left(self, left_norm):
        return self.alpha + 5.0  # unsound: exceeds value for every norm

    def lower_bound_right(self, right_norm):
        return self.alpha


def test_ssj101_unsound_bound(pair):
    left, right = pair
    report = verify_ssjoin(
        left, right, OverlapPredicate([OvershootingBound(1.0)]),
        implementation="prefix",
    )
    assert "SSJ101" in error_rules(report)
    diag = next(d for d in report.errors() if d.rule == "SSJ101")
    assert "lower_bound_left" in diag.message
    assert diag.location == "predicate.bounds[0]"


def test_ssj101_raising_bound(pair):
    left, right = pair

    @dataclass(frozen=True)
    class RaisingBound(Bound):
        def value(self, left_norm, right_norm):
            raise ZeroDivisionError("boom")

        def lower_bound_left(self, left_norm):
            return 0.0

        def lower_bound_right(self, right_norm):
            return 0.0

    report = verify_ssjoin(left, right, OverlapPredicate([RaisingBound()]))
    assert "SSJ101" in error_rules(report)


# -- SSJ102: ordering mismatch in encoded plans -------------------------------


def test_ssj102_different_dictionaries(pair):
    left, right = pair
    enc_left, _, _ = encode_pair(left, left)
    _, enc_right, _ = encode_pair(right, right)
    report = verify_ssjoin(
        left,
        right,
        OverlapPredicate.absolute(1.0),
        implementation="encoded-prefix",
        encoding=(enc_left, enc_right),
    )
    assert "SSJ102" in error_rules(report)
    diag = next(d for d in report.errors() if d.rule == "SSJ102")
    assert "different dictionaries" in diag.message


def test_ssj102_stale_encoding(pair):
    left, right = pair
    enc_left, enc_right, _ = encode_pair(left, right)
    changed = PreparedRelation.from_strings(
        ["entirely different content"], words, name="L2"
    )
    report = verify_ssjoin(
        changed,
        right,
        OverlapPredicate.absolute(1.0),
        implementation="encoded-prefix",
        encoding=(enc_left, enc_right),
    )
    assert "SSJ102" in error_rules(report)
    diag = next(d for d in report.errors() if d.rule == "SSJ102")
    assert "different relation" in diag.message


def test_ssj102_dictionary_disagrees_with_supplied_ordering(pair):
    left, right = pair
    # Encoded under the default joint-frequency order...
    enc_left, enc_right, _ = encode_pair(left, right)
    # ...but the plan claims the adversarial reverse order.
    report = verify_ssjoin(
        left,
        right,
        OverlapPredicate.absolute(1.0),
        ordering=reverse_frequency_ordering(left, right),
        implementation="encoded-prefix",
        encoding=(enc_left, enc_right),
    )
    assert "SSJ102" in error_rules(report)


def test_ssj102_consistent_encoding_passes(pair):
    left, right = pair
    enc_left, enc_right, _ = encode_pair(left, right)
    report = verify_ssjoin(
        left,
        right,
        OverlapPredicate.absolute(1.0),
        implementation="encoded-prefix",
        encoding=(enc_left, enc_right),
    )
    assert report.ok, report.render()


# -- SSJ103: float-equality threshold test ------------------------------------


class EqualityPredicate(OverlapPredicate):
    def satisfied(self, overlap, left_norm, right_norm):
        return overlap == self.threshold(left_norm, right_norm)


def test_ssj103_float_equality(pair):
    left, right = pair
    report = verify_ssjoin(left, right, EqualityPredicate.absolute(1.0))
    assert "SSJ103" in error_rules(report)
    diag = next(d for d in report.errors() if d.rule == "SSJ103")
    assert "satisfied" in diag.message


# -- SSJ104: verify step disagrees with the predicate family ------------------


class StrictPredicate(OverlapPredicate):
    def satisfied(self, overlap, left_norm, right_norm):
        return overlap > self.threshold(left_norm, right_norm)  # drops boundary


class LaxPredicate(OverlapPredicate):
    def satisfied(self, overlap, left_norm, right_norm):
        return True  # admits sub-threshold pairs


def test_ssj104_boundary_dropping(pair):
    left, right = pair
    report = verify_ssjoin(left, right, StrictPredicate.absolute(1.0))
    assert "SSJ104" in error_rules(report)
    assert "SSJ103" not in error_rules(report)  # no equality test involved


def test_ssj104_sub_threshold_admission(pair):
    left, right = pair
    report = verify_ssjoin(left, right, LaxPredicate.absolute(1.0))
    assert "SSJ104" in error_rules(report)


# -- SSJ106 / SSJ107 ----------------------------------------------------------


def test_ssj106_unknown_implementation(pair):
    left, right = pair
    report = verify_ssjoin(
        left, right, OverlapPredicate.absolute(1.0), implementation="hyperdrive"
    )
    assert "SSJ106" in error_rules(report)


def test_ssj107_degenerate_prefix_warns(pair):
    left, right = pair
    # One-sided predicates leave the unnormalized side unfiltered.
    report = verify_ssjoin(
        left, right, OverlapPredicate.one_sided(0.6), implementation="prefix"
    )
    assert report.ok
    assert "SSJ107" in rules(report)
    assert any(d.location == "right" for d in report.warnings())


def test_ssj107_not_raised_for_probe_left(pair):
    left, right = pair
    # Probe plans only prefix the left side, which *is* filtered here.
    report = verify_ssjoin(
        left, right, OverlapPredicate.one_sided(0.6), implementation="probe"
    )
    assert "SSJ107" not in rules(report)


# -- check_ssjoin -------------------------------------------------------------


def test_check_ssjoin_raises_and_lists_rules(pair):
    left, right = pair
    with pytest.raises(AnalysisError) as exc:
        check_ssjoin(left, right, OverlapPredicate([OvershootingBound(1.0)]))
    assert any(d.rule == "SSJ101" for d in exc.value.diagnostics)


def test_check_ssjoin_returns_report_when_safe(pair):
    left, right = pair
    report = check_ssjoin(left, right, OverlapPredicate.absolute(1.0))
    assert report.ok
