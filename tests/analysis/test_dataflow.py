"""Dataflow auditor: lattice/CFG units, per-rule golden snippets, the
fixture-corpus gate, and the engine-is-clean gate."""

import ast
import time
from pathlib import Path

import pytest

from repro.analysis.dataflow import (
    CLEAN,
    AbstractValue,
    analyze_dataflow,
    analyze_sources,
    build_cfg,
    check_corpus,
    expected_rules,
    join,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "analysis" / "dataflow_fixtures"

#: Boilerplate making ``{fn}`` a kernel: its name crosses a pool boundary.
DRIVER = "\n\ndef driver(pool, xs):\n    return [pool.submit({fn}, x) for x in xs]\n"


def df(source):
    return analyze_sources([("mod.py", source)])


def rules(report):
    return sorted({d.rule for d in report})


# -- lattice ------------------------------------------------------------------


def test_join_is_pointwise_or_with_first_origin():
    a = AbstractValue(tainted=True, origin="set iteration at line 3")
    b = AbstractValue(nondet=True, origin="time.time() at line 9")
    j = join(a, b)
    assert j.tainted and j.nondet and not j.unordered
    assert j.origin == "set iteration at line 3"
    assert join(CLEAN, CLEAN) == CLEAN


def test_join_drops_mismatched_alias():
    a = AbstractValue(alias_of="rows")
    b = AbstractValue(alias_of="cols")
    assert join(a, b).alias_of is None
    assert join(a, a).alias_of == "rows"


# -- CFG ----------------------------------------------------------------------


def test_cfg_loop_header_has_back_edge():
    fn = ast.parse(
        "def f(xs):\n    for x in xs:\n        y = x\n    return y\n"
    ).body[0]
    cfg = build_cfg(fn)
    header = next(
        b for b in cfg.blocks
        if any(isinstance(s, ast.For) for s in b.statements)
    )
    # Loop header branches to body and after-loop ...
    assert len(header.succs) == 2
    # ... and the body's end loops back to it.
    preds = cfg.preds()[header.bid]
    assert len(preds) >= 2


def test_cfg_loop_body_carries_loop_context():
    fn = ast.parse(
        "def f(xs):\n    for x in xs:\n        y = x\n    return y\n"
    ).body[0]
    cfg = build_cfg(fn)
    in_loop = [b for b in cfg.blocks if b.loop_ids]
    assert in_loop, "loop body blocks must record their enclosing loop"


def test_cfg_code_after_return_is_disconnected():
    fn = ast.parse("def f():\n    return 1\n    x = 2\n").body[0]
    cfg = build_cfg(fn)
    reachable = set(cfg.rpo())
    dead = [
        b.bid
        for b in cfg.blocks
        if any(isinstance(s, ast.Assign) for s in b.statements)
    ]
    assert dead and all(bid not in reachable for bid in dead)


# -- DF301: ordering taint ----------------------------------------------------


def test_df301_kernel_returns_list_of_set():
    src = (
        "def k(rows):\n"
        "    u = set()\n"
        "    for r in rows:\n"
        "        u.add(r)\n"
        "    return list(u)\n" + DRIVER.format(fn="k")
    )
    assert rules(df(src)) == ["DF301"]


def test_df301_sorted_is_a_canonicalization_point():
    src = (
        "def k(rows):\n"
        "    u = set()\n"
        "    for r in rows:\n"
        "        u.add(r)\n"
        "    return sorted(u)\n" + DRIVER.format(fn="k")
    )
    assert df(src).ok


def test_df301_result_constructor_is_an_emission_point_everywhere():
    # No pool in sight: Batch columns must be canonical in any function.
    src = (
        "def build(groups):\n"
        "    keys = {g for g in groups}\n"
        "    return Batch([[k for k in keys]])\n"
    )
    assert rules(df(src)) == ["DF301"]


def test_df301_set_typed_parameter_is_tracked():
    src = (
        "from typing import Set\n\n"
        "def k(items: Set[str]):\n"
        "    return [i for i in items]\n" + DRIVER.format(fn="k")
    )
    assert rules(df(src)) == ["DF301"]


def test_df301_taint_crosses_helper_calls_via_summaries():
    src = (
        "def _helper(rows):\n"
        "    return list(set(rows))\n\n"
        "def k(rows):\n"
        "    return _helper(rows)\n" + DRIVER.format(fn="k")
    )
    report = df(src)
    assert "DF301" in rules(report)
    # The finding anchors in the kernel, where the emission happens.
    assert any("k()" in d.message for d in report)


def test_df301_helper_that_canonicalizes_clears_taint():
    src = (
        "def _canon(rows):\n"
        "    return sorted(set(rows))\n\n"
        "def k(rows):\n"
        "    return _canon(rows)\n" + DRIVER.format(fn="k")
    )
    assert df(src).ok


def test_df301_plain_helper_return_is_not_an_emission():
    # Only kernels and result constructors are emission points; a helper
    # returning hash-order data is fine until something emits it.
    src = "def helper(rows):\n    return list(set(rows))\n"
    assert df(src).ok


# -- DF302/DF303: kernel purity -----------------------------------------------


def test_df302_kernel_mutating_parameter():
    src = (
        "def k(rows):\n"
        "    rows.append(1)\n"
        "    return rows\n" + DRIVER.format(fn="k")
    )
    assert rules(df(src)) == ["DF302"]


def test_df302_defensive_copy_is_fine():
    src = (
        "def k(rows):\n"
        "    rows = list(rows)\n"
        "    rows.append(1)\n"
        "    return rows\n" + DRIVER.format(fn="k")
    )
    assert df(src).ok


def test_df302_non_kernel_may_mutate_its_args():
    src = "def helper(rows):\n    rows.append(1)\n    return rows\n"
    assert df(src).ok


def test_df303_kernel_global_write():
    src = (
        "_CACHE = {}\n\n"
        "def k(key):\n"
        "    global _CACHE\n"
        "    _CACHE[key] = key\n"
        "    return key\n" + DRIVER.format(fn="k")
    )
    assert rules(df(src)) == ["DF303"]


# -- DF304: pickling boundary -------------------------------------------------


def test_df304_lambda_shipped_to_pool():
    src = "def driver(pool, xs):\n    return pool.submit(lambda x: x, xs)\n"
    assert rules(df(src)) == ["DF304"]


def test_df304_nested_def_shipped_to_pool():
    src = (
        "def driver(pool, xs, off):\n"
        "    def shifted(x):\n"
        "        return x + off\n"
        "    return pool.map(shifted, xs)\n"
    )
    assert rules(df(src)) == ["DF304"]


def test_df304_module_level_function_is_picklable():
    src = (
        "def k(x):\n    return x\n\n"
        "def driver(pool, xs):\n    return pool.map(k, xs)\n"
    )
    assert df(src).ok


# -- DF305: nondeterminism ----------------------------------------------------


def test_df305_wall_clock_into_emitted_rows():
    src = (
        "import time\n\n"
        "def k(rows):\n"
        "    out = []\n"
        "    for r in rows:\n"
        "        out.append((r, time.time()))\n"
        "    return out\n" + DRIVER.format(fn="k")
    )
    assert rules(df(src)) == ["DF305"]


def test_df305_telemetry_keyword_is_exempt():
    src = (
        "import time\n\n"
        "def k(rows):\n"
        "    start = time.perf_counter()\n"
        "    return Result(rows, seconds=time.perf_counter() - start)\n"
        + DRIVER.format(fn="k")
    )
    assert df(src).ok


def test_df305_builtin_hash_into_result_constructor():
    src = (
        "def build(schema, values):\n"
        "    rows = [(hash(v), v) for v in values]\n"
        "    return Relation(schema, rows)\n"
    )
    assert rules(df(src)) == ["DF305"]


def test_df305_keyed_cache_access_does_not_leak_the_key():
    # The id()-keyed memo pattern: the key selects the entry, the stored
    # value is deterministic.  This is how the engine's parse caches work.
    src = (
        "def memo(cache, encoded):\n"
        "    key = id(encoded)\n"
        "    hit = cache.get(key)\n"
        "    if hit is None:\n"
        "        hit = len(encoded)\n"
        "        cache[key] = hit\n"
        "    return hit\n"
    )
    assert df(src).ok


# -- DF306: float accumulation order ------------------------------------------


def test_df306_float_accumulator_under_set_iteration():
    src = (
        "def total_weight(ws):\n"
        "    total = 0.0\n"
        "    for w in set(ws):\n"
        "        total += w\n"
        "    return total\n"
    )
    report = df(src)
    assert rules(report) == ["DF306"]
    assert report.ok  # warning severity: flagged, not gating


def test_df306_sum_generator_over_set():
    src = (
        "def norm_of(group):\n"
        "    weights = {m for m in group}\n"
        "    return sum(w for w in weights)\n"
    )
    assert rules(df(src)) == ["DF306"]


def test_df306_sorted_iteration_is_fine():
    src = (
        "def total_weight(ws):\n"
        "    total = 0.0\n"
        "    for w in sorted(set(ws)):\n"
        "        total += w\n"
        "    return total\n"
    )
    assert df(src).ok and not df(src).warnings()


def test_df306_fsum_is_order_insensitive():
    src = (
        "import math\n\n"
        "def total_weight(ws):\n"
        "    weights = set(ws)\n"
        "    return math.fsum(weights)\n"
    )
    assert df(src).ok and not df(src).warnings()


# -- dict-order guarantees ----------------------------------------------------


def test_dict_iteration_is_insertion_ordered_and_clean():
    src = (
        "def group(pairs):\n"
        "    index = {}\n"
        "    for k, v in pairs:\n"
        "        index.setdefault(k, []).append(v)\n"
        "    return [(k, vs) for k, vs in index.items()]\n"
    )
    assert df(src).ok


# -- suppression --------------------------------------------------------------


def test_df_statement_suppression():
    src = (
        "def k(rows):\n"
        "    return list(set(rows))  # repro: ignore[DF301]\n"
        + DRIVER.format(fn="k")
    )
    assert df(src).ok


def test_df_file_level_suppression():
    src = (
        "# repro: ignore-file[DF301]\n"
        "def k(rows):\n"
        "    return list(set(rows))\n" + DRIVER.format(fn="k")
    )
    assert df(src).ok


# -- DF300 --------------------------------------------------------------------


def test_df300_syntax_error():
    assert rules(df("def broken(:\n")) == ["DF300"]


# -- the fixture corpus, file by file -----------------------------------------


@pytest.mark.parametrize(
    "fixture", sorted(CORPUS.glob("*.py")), ids=lambda p: p.stem
)
def test_fixture_detected_exactly_as_seeded(fixture):
    source = fixture.read_text(encoding="utf-8")
    expected = expected_rules(source)
    assert expected is not None, "fixture must declare its seeded defects"
    report = analyze_sources([(str(fixture), source)])
    found = {d.rule for d in report if d.rule.startswith("DF")}
    assert found == expected, report.render()


def test_corpus_gate_is_green():
    report = check_corpus(CORPUS)
    assert report.ok, report.render()


def test_corpus_gate_rejects_missing_corpus(tmp_path):
    report = check_corpus(tmp_path / "nope")
    assert rules(report) == ["DF399"]


def test_corpus_gate_rejects_unlabelled_fixture(tmp_path):
    (tmp_path / "mystery.py").write_text("x = 1\n")
    report = check_corpus(tmp_path)
    assert any("no seeded-defect markers" in d.message for d in report)


# -- the engine itself is clean, and fast to audit ----------------------------


def test_engine_is_dataflow_clean():
    report = analyze_dataflow([str(REPO_ROOT / "src" / "repro")])
    assert not report.errors(), report.render()


def test_full_tree_audit_is_fast():
    start = time.perf_counter()
    analyze_dataflow([str(REPO_ROOT / "src" / "repro")])
    assert time.perf_counter() - start < 10.0
