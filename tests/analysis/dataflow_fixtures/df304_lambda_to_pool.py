# seeded-defect: DF304
# A lambda shipped to a process pool cannot be pickled; this fails at
# runtime on the pool backend while passing on the serial backend.


def driver_f(pool, shards):
    return [pool.submit(lambda s: s * 2, shard) for shard in shards]
