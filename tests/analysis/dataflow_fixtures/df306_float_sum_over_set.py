# seeded-defect: DF306
# Float addition is not associative: accumulating over set iteration
# makes the total depend on hash order in the last ulps — enough to flip
# a threshold comparison between runs.


def total_weight_j(weights):
    seen = set(weights)
    total = 0.0
    for w in seen:
        total += w
    return total
