# seeded-defect: none
# The canonical fix for df301_list_of_set_returned: sorted(...) is a
# canonicalization point, so the kernel's emission is order-clean.


def canonical_tokens_l(rows):
    universe = set()
    for row in rows:
        universe.add(row)
    return sorted(universe)


def driver_l(pool, shards):
    return [pool.submit(canonical_tokens_l, s) for s in shards]
