# seeded-defect: DF306
# The same defect through sum(): a float reduction whose term order is
# the hash order of a set.


def norm_of_k(group):
    members = {m for m in group}
    return sum(weight for weight, _ in members)
