# seeded-defect: DF300
# A file that does not parse: the auditor must report DF300 instead of
# silently skipping it (a skipped file is an unaudited file).

def broken(x:
    return x
