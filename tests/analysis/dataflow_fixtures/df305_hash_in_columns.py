# seeded-defect: DF305
# Builtin hash() is salted per process for strings: bucketing emitted
# rows by hash(v) makes the result constructor's columns differ between
# runs and between pool workers.


class Relation:
    def __init__(self, schema, rows):
        self.schema = schema
        self.rows = rows


def bucket_relation_i(schema, values):
    rows = [(hash(v) % 64, v) for v in values]
    return Relation(schema, rows)
