# seeded-defect: DF305
# A wall-clock reading lands inside the emitted rows (not in a telemetry
# field): two runs of the same join produce different bytes.
import time


def stamp_rows_h(rows):
    stamped = []
    for row in rows:
        stamped.append((row, time.time()))
    return stamped


def driver_h(pool, shards):
    return [pool.submit(stamp_rows_h, s) for s in shards]
