# seeded-defect: none
# Dict iteration is insertion-ordered (guaranteed since 3.7) and the
# engine relies on that: grouping into a dict and emitting its items in
# insertion order is deterministic and must not be flagged.


def group_pairs_n(pairs):
    index = {}
    for key, value in pairs:
        index.setdefault(key, []).append(value)
    ordered = [(k, vs) for k, vs in index.items()]
    return ordered
