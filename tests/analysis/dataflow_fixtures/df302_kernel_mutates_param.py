# seeded-defect: DF302
# A kernel appends to its argument in place: under the serial backend the
# caller's list grows, under the pool backend the pickled copy grows —
# the two backends diverge.


def normalize_rows_c(rows):
    rows.append(0)  # caller-owned argument mutated in place
    return rows


def driver_c(pool, shards):
    return [pool.submit(normalize_rows_c, s) for s in shards]
