# seeded-defect: DF301
# A result constructor (Batch) is fed a column whose order came from
# iterating a set comprehension: the column content order is hash-order.


class Batch:
    def __init__(self, columns):
        self.columns = columns


def build_batch_b(groups):
    keys = {g.key for g in groups}
    column = [k for k in keys]  # ordered view of an unordered set
    return Batch([column])
