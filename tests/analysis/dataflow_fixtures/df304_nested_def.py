# seeded-defect: DF304
# A nested function captures its enclosing scope (offset) and is shipped
# to the pool: nested functions do not pickle, and the closure capture is
# exactly the state that should travel as an explicit argument.


def driver_g(pool, shards, offset):
    def shifted(shard):
        return shard + offset

    return [pool.submit(shifted, s) for s in shards]
