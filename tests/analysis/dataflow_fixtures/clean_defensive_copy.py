# seeded-defect: none
# Allowed patterns the auditor must not flag: a defensive copy before
# mutation (rows = list(rows)), a membership test against a set (an
# order-insensitive reduction), and a wall-clock reading confined to a
# telemetry keyword argument.
import time


class ShardResult:
    def __init__(self, rows, seconds):
        self.rows = rows
        self.seconds = seconds


def process_shard_m(rows, lookup):
    start = time.perf_counter()
    out = list(rows)
    out.append(len(rows))
    selected = [r for r in out if r in lookup]
    return ShardResult(selected, seconds=time.perf_counter() - start)


def driver_m(pool, shards, lookup):
    return [pool.submit(process_shard_m, s, lookup) for s in shards]
