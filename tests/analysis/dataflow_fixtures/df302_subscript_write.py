# seeded-defect: DF302
# Same contract, different syntax: item assignment through a parameter
# alias is still an in-place mutation of caller-owned data.


def scale_weights_d(weights, factor):
    values = weights  # plain alias, not a defensive copy
    for i in range(len(values)):
        values[i] = values[i] * factor
    return values


def driver_d(pool, shards):
    return pool.map(scale_weights_d, shards)
