# seeded-defect: DF301
# A kernel materializes a set in hash order and returns it: the emitted
# row order differs run to run (PYTHONHASHSEED) and shard merges stop
# being bit-identical.
from concurrent.futures import ProcessPoolExecutor


def collect_tokens_a(rows):
    universe = set()
    for row in rows:
        universe.add(row)
    return list(universe)  # emits hash-order


def driver_a(shards):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(collect_tokens_a, s) for s in shards]
    return futures
