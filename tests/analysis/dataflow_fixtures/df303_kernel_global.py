# seeded-defect: DF303
# A kernel memoizes into a module global: each pool process grows its own
# private cache, results depend on shard-to-process placement, and none
# of it ever returns to the parent.

_CACHE = {}


def lookup_shard_e(key):
    global _CACHE
    _CACHE[key] = key * 2
    return _CACHE[key]


def driver_e(pool, keys):
    return pool.map(lookup_shard_e, keys)
