"""Multi-field record linkage vs a brute-force scoring oracle."""

import pytest

from repro.cleaning.records import FieldRule, record_linkage_join, _combined_score
from repro.data.persons import PersonConfig, generate_persons
from repro.errors import ReproError


RULES = (
    FieldRule("name", weight=2.0, similarity="edit"),
    FieldRule("address", weight=1.5, similarity="jaccard"),
    FieldRule("phone", weight=1.0, similarity="exact"),
)


def oracle(left, right, rules, threshold, key="id", self_join=False):
    out = set()
    for i, r1 in enumerate(left):
        for j, r2 in enumerate(right):
            if self_join and j <= i:
                continue
            if _combined_score(r1, r2, rules) + 1e-9 >= threshold:
                a, b = r1[key], r2[key]
                if self_join and repr(b) < repr(a):
                    a, b = b, a
                out.add((a, b))
    return out


@pytest.fixture
def people():
    return [
        {"id": 1, "name": "ann smith", "address": "12 main st", "phone": "555"},
        {"id": 2, "name": "ann smyth", "address": "12 main st", "phone": "555"},
        {"id": 3, "name": "bob jones", "address": "9 oak ave", "phone": "777"},
        {"id": 4, "name": "bob jones", "address": "9 oak avenue", "phone": "778"},
        {"id": 5, "name": "zed quex", "address": "1 elm rd", "phone": "999"},
    ]


class TestFieldRule:
    def test_named_similarities(self):
        assert FieldRule("f", similarity="exact").fn()("a", "a") == 1.0
        assert FieldRule("f", similarity="edit").fn()("ab", "ac") == 0.5

    def test_callable_similarity(self):
        rule = FieldRule("f", similarity=lambda a, b: 0.42)
        assert rule.fn()("x", "y") == 0.42

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            FieldRule("f", similarity="quantum").fn()

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ReproError):
            FieldRule("f", weight=0.0)


class TestCombinedScore:
    def test_weighted_average(self):
        r1 = {"name": "ab", "phone": "1"}
        r2 = {"name": "ab", "phone": "2"}
        rules = (FieldRule("name", 3.0, "exact"), FieldRule("phone", 1.0, "exact"))
        assert _combined_score(r1, r2, rules) == pytest.approx(0.75)

    def test_missing_field_contributes_zero(self):
        r1 = {"name": "ab"}
        r2 = {"name": "ab", "phone": "2"}
        rules = (FieldRule("name", 1.0, "exact"), FieldRule("phone", 1.0, "exact"))
        assert _combined_score(r1, r2, rules) == pytest.approx(0.5)


class TestRecordLinkage:
    def test_matches_oracle_self_join(self, people):
        res = record_linkage_join(people, rules=RULES, threshold=0.8,
                                  exhaustive=True)
        assert res.pair_set() == oracle(people, people, RULES, 0.8, self_join=True)
        assert (1, 2) in res.pair_set()

    def test_lower_threshold_finds_weaker_pair(self, people):
        res = record_linkage_join(people, rules=RULES, threshold=0.6,
                                  exhaustive=True)
        assert (3, 4) in res.pair_set()

    @pytest.mark.parametrize("threshold", [0.6, 0.75, 0.9])
    def test_matches_oracle_across_thresholds(self, people, threshold):
        res = record_linkage_join(people, rules=RULES, threshold=threshold,
                                  exhaustive=True)
        assert res.pair_set() == oracle(
            people, people, RULES, threshold, self_join=True
        )

    def test_two_table_form(self, people):
        left, right = people[:2], people[2:]
        res = record_linkage_join(left, right, rules=RULES, threshold=0.5,
                                  exhaustive=True)
        assert res.pair_set() == oracle(left, right, RULES, 0.5)

    def test_generated_persons_recovered(self):
        data = generate_persons(PersonConfig(num_persons=50, seed=12,
                                             disagreement_prob=0.1))
        left = [dict(r, id=r["name"]) for r in data.table1]
        right = [dict(r, id=r["name"]) for r in data.table2]
        rules = (
            FieldRule("address", weight=1.0, similarity="jaccard"),
            FieldRule("email", weight=1.0, similarity="edit"),
            FieldRule("phone", weight=1.0, similarity="exact"),
        )
        # threshold 0.6 tolerates one fully-disagreeing field of three
        res = record_linkage_join(left, right, rules=rules, threshold=0.6)
        truth = set(data.truth.items())
        recall = len(truth & res.pair_set()) / len(truth)
        assert recall > 0.9
        # blocked result is a subset of the exhaustive one, which in turn
        # must match the oracle exactly
        full = record_linkage_join(left, right, rules=rules, threshold=0.6,
                                   exhaustive=True)
        assert res.pair_set() <= full.pair_set()
        assert full.pair_set() == oracle(left, right, rules, 0.6)

    def test_blocking_reduces_comparisons(self, people):
        res = record_linkage_join(people, rules=RULES, threshold=0.8)
        n = len(people)
        assert res.metrics.similarity_comparisons < n * (n - 1) / 2 + 1

    def test_explicit_block_field(self, people):
        res = record_linkage_join(
            people, rules=RULES, threshold=0.8, block_on="address"
        )
        # blocking on the shared-address field keeps the (1, 2) pair
        assert (1, 2) in res.pair_set()
        assert "address" in res.implementation

    def test_scores_sorted_descending(self, people):
        res = record_linkage_join(people, rules=RULES, threshold=0.5)
        sims = [p.similarity for p in res.pairs]
        assert sims == sorted(sims, reverse=True)

    def test_validation(self, people):
        with pytest.raises(ReproError):
            record_linkage_join(people, rules=(), threshold=0.8)
        with pytest.raises(ReproError):
            record_linkage_join(people, rules=RULES, threshold=0.0)
        with pytest.raises(ReproError):
            record_linkage_join(people, rules=RULES, block_on="nonexistent")
        with pytest.raises(ReproError):
            record_linkage_join(people + [dict(people[0])], rules=RULES)
