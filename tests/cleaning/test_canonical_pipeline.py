"""Tests for canonical election and the end-to-end dedupe pipeline."""

import pytest

from repro.cleaning.canonical import (
    canonical_mapping,
    elect_centroid,
    elect_longest,
    elect_most_frequent,
)
from repro.cleaning.pipeline import dedupe
from repro.data.customers import CustomerConfig, generate_addresses
from repro.errors import ReproError


class TestElectors:
    def test_longest(self):
        assert elect_longest(["ms corp", "microsoft corp"]) == "microsoft corp"

    def test_longest_tie_lexicographic(self):
        assert elect_longest(["bb", "aa"]) == "bb"  # (len, value) max

    def test_longest_empty_rejected(self):
        with pytest.raises(ReproError):
            elect_longest([])

    def test_most_frequent(self):
        freq = {"ms corp": 10, "microsoft corp": 2}
        assert elect_most_frequent(["ms corp", "microsoft corp"], freq) == "ms corp"

    def test_most_frequent_falls_back_without_table(self):
        assert elect_most_frequent(["ab", "abc"]) == "abc"

    def test_centroid_prefers_middle_variant(self):
        cluster = ["12 main st", "12 main street", "12 maine st"]
        winner = elect_centroid(cluster)
        assert winner in cluster
        # '12 main st' shares tokens with both others.
        assert winner == "12 main st"

    def test_centroid_singleton(self):
        assert elect_centroid(["only"]) == "only"


class TestCanonicalMapping:
    def test_maps_all_members(self):
        mapping = canonical_mapping([["a bb", "a bbb"]], elector=elect_longest)
        assert mapping == {"a bb": "a bbb", "a bbb": "a bbb"}

    def test_conflicting_clusters_rejected(self):
        with pytest.raises(ReproError):
            canonical_mapping([["x", "y"], ["x", "z z z"]], elector=elect_longest)

    def test_empty_clusters_ok(self):
        assert canonical_mapping([]) == {}


class TestDedupePipeline:
    def test_end_to_end_small(self):
        values = ["12 main st", "12 main street", "12 main st", "9 oak ave"]
        # JR("12 main st", "12 main street") = 2/4 = 0.5 (st != street).
        report = dedupe(values, similarity="jaccard", threshold=0.5, weights=None)
        assert report.num_clusters == 1
        cleaned = report.clean_values()
        assert cleaned[0] == cleaned[1] == cleaned[2]
        assert cleaned[3] == "9 oak ave"
        assert report.num_duplicates >= 1
        assert "clusters" in report.summary()

    def test_edit_similarity_pipeline(self):
        values = ["microsoft corp", "mcrosoft corp", "oracle corp"]
        report = dedupe(values, similarity="edit", threshold=0.85)
        assert report.num_clusters == 1
        assert report.mapping["mcrosoft corp"] == report.mapping["microsoft corp"]

    def test_bridge_threshold_prevents_chaining(self):
        # X~A at 0.8 (strong); A~B at 0.6 and X~B at 0.5 (weak). A tight
        # bridge threshold keeps the strong pair and excludes B.
        x, a, b = "a b c d x", "a b c d", "a b c e"
        loose = dedupe([x, a, b], similarity="jaccard", threshold=0.5, weights=None)
        tight = dedupe([x, a, b], similarity="jaccard", threshold=0.5,
                       bridge_threshold=0.7, weights=None)
        assert [set(c) for c in loose.clusters] == [{x, a, b}]
        assert [set(c) for c in tight.clusters] == [{x, a}]
        assert all(b not in c for c in tight.clusters)

    def test_unknown_similarity(self):
        with pytest.raises(ReproError):
            dedupe(["a"], similarity="soundex-ish")

    def test_no_duplicates_found(self):
        report = dedupe(["completely", "different", "strings"],
                        similarity="edit", threshold=0.95)
        assert report.num_clusters == 0
        assert report.clean_values() == ["completely", "different", "strings"]

    def test_generated_corpus_reduces_distinct_values(self):
        rows = generate_addresses(
            CustomerConfig(num_rows=150, seed=41, duplicate_fraction=0.3)
        )
        report = dedupe(rows, similarity="edit", threshold=0.85)
        assert report.num_duplicates > 0
        assert len(set(report.clean_values())) < len(set(rows))

    def test_report_metrics_attached(self):
        report = dedupe(["a b", "a b c"], similarity="jaccard", threshold=0.6,
                        weights=None)
        assert report.metrics.total_seconds > 0
        assert report.join_result.implementation in (
            "basic", "prefix", "inline", "probe",
            "encoded-prefix", "encoded-probe",
        )
