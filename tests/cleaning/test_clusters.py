"""Unit + property tests for duplicate clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.clusters import UnionFind, cluster_pairs, clusters_with_scores
from repro.errors import ReproError
from repro.joins.base import MatchPair


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert not uf.same("a", "b")
        assert len(uf) == 2

    def test_union_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")

    def test_find_registers_unknown(self):
        uf = UnionFind()
        assert uf.find("new") == "new"
        assert len(uf) == 1

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert len(uf.groups()) == 1

    def test_groups_deterministic(self):
        uf = UnionFind()
        uf.union("z", "y")
        uf.union("b", "a")
        assert uf.groups() == [["a", "b"], ["y", "z"]]

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_components(self, edges):
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        # Naive closure for comparison.
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        def component(start):
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return frozenset(seen)

        expected = {component(n) for n in adjacency}
        got = {frozenset(g) for g in uf.groups()}
        assert got == expected


class TestClusterPairs:
    def test_basic(self):
        assert cluster_pairs([("a", "b"), ("b", "c"), ("x", "y")]) == [
            ["a", "b", "c"],
            ["x", "y"],
        ]

    def test_min_size_filters_singletons(self):
        out = cluster_pairs([("a", "b")], items=["a", "b", "lonely"], min_size=2)
        assert out == [["a", "b"]]

    def test_singletons_reported_when_requested(self):
        out = cluster_pairs([("a", "b")], items=["a", "b", "lonely"], min_size=1)
        assert ["lonely"] in out

    def test_empty_input(self):
        assert cluster_pairs([]) == []

    def test_invalid_min_size(self):
        with pytest.raises(ReproError):
            cluster_pairs([], min_size=0)


class TestClustersWithScores:
    def test_weak_bridges_dropped(self):
        matches = [
            MatchPair("a", "b", 0.95),
            MatchPair("b", "c", 0.61),  # weak bridge
            MatchPair("c", "d", 0.97),
        ]
        out = clusters_with_scores(matches, bridge_threshold=0.9)
        assert out == [["a", "b"], ["c", "d"]]

    def test_zero_threshold_keeps_everything(self):
        matches = [MatchPair("a", "b", 0.1), MatchPair("b", "c", 0.2)]
        assert clusters_with_scores(matches) == [["a", "b", "c"]]

    def test_boundary_inclusive(self):
        matches = [MatchPair("a", "b", 0.9)]
        assert clusters_with_scores(matches, bridge_threshold=0.9) == [["a", "b"]]
