"""The index-probe implementation must match the oracle like the others."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import InvertedIndex, index_probe_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.ordering import frequency_ordering, random_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin, ssjoin
from repro.tokenize.sets import WeightedSet
from repro.tokenize.words import words

from tests.core.test_implementations import oracle, predicates, prepared_relations


class TestInvertedIndex:
    def test_postings_shape(self):
        p = PreparedRelation.from_strings(["a b", "a c"], words)
        index = InvertedIndex(p)
        assert index.num_elements == 3  # ('a',1), ('b',1), ('c',1)
        assert index.num_postings == 4
        assert len(index.postings(("a", 1))) == 2
        assert index.postings(("zzz", 1)) == []

    def test_postings_carry_norms(self):
        p = PreparedRelation.from_strings(["a b"], words)
        ((a, w, norm),) = InvertedIndex(p).postings(("a", 1))
        assert a == "a b"
        assert w == 1.0
        assert norm == 2.0

    def test_repr(self):
        p = PreparedRelation.from_strings(["a"], words)
        assert "postings=1" in repr(InvertedIndex(p))


class TestProbeMatchesOracle:
    @given(
        prepared_relations("r"),
        prepared_relations("s"),
        predicates(),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_probe_equals_oracle_under_any_ordering(self, left, right, predicate, seed):
        expected = oracle(left, right, predicate)
        ordering = random_ordering(seed, left, right)
        got = index_probe_ssjoin(left, right, predicate, ordering=ordering)
        assert {(r[0], r[1]) for r in got.rows} == expected

    @given(prepared_relations("r"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_probe_reports_exact_overlaps(self, rel, predicate):
        got = index_probe_ssjoin(rel, rel, predicate)
        for a_r, a_s, overlap, norm_r, norm_s in got.rows:
            assert overlap == pytest.approx(rel.group(a_r).overlap(rel.group(a_s)))


class TestFacadeIntegration:
    def test_probe_via_facade(self):
        r = PreparedRelation.from_strings(["a b c", "x y"], words)
        s = PreparedRelation.from_strings(["a b c d", "p q"], words)
        pred = OverlapPredicate.absolute(2.0)
        res = ssjoin(r, s, pred, implementation="probe")
        assert res.implementation == "probe"
        assert res.pair_set() == ssjoin(r, s, pred, implementation="basic").pair_set()

    def test_explain_probe(self):
        r = PreparedRelation.from_strings(["a"], words)
        text = SSJoin(r, r, OverlapPredicate.absolute(1.0)).explain("probe")
        assert "InvertedIndex" in text

    def test_prebuilt_index_reused(self):
        """Amortizing index construction across probe calls (lookup mode)."""
        refs = PreparedRelation.from_strings(["a b c", "c d e"], words)
        index = InvertedIndex(refs)
        pred = OverlapPredicate.absolute(1.0)
        for query in ("a b", "d e"):
            q = PreparedRelation.from_strings([query], words)
            out = index_probe_ssjoin(q, refs, pred, index=index)
            assert len(out) >= 1

    def test_metrics_populated(self):
        r = PreparedRelation.from_strings(["a b c", "a b d"], words)
        m = ExecutionMetrics()
        index_probe_ssjoin(r, r, OverlapPredicate.two_sided(0.5), metrics=m)
        assert m.implementation == "probe"
        assert m.candidate_pairs >= m.output_pairs > 0

    def test_optimizer_costs_probe(self):
        from repro.core.optimizer import CostModel

        rel = PreparedRelation.from_strings(
            [f"the tok{i}" for i in range(20)], words
        )
        estimates = CostModel().estimate_all(rel, rel, OverlapPredicate.two_sided(0.9))
        from repro.core.optimizer import IMPLEMENTATIONS

        assert {e.implementation for e in estimates} == set(IMPLEMENTATIONS)
