"""The partitioned SSJoin must equal the unpartitioned result."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import basic_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.partitioned import (
    PartitionedResult,
    partition_by_set_size,
    partitioned_ssjoin,
)
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import PlanError
from repro.tokenize.words import words

from tests.core.test_implementations import oracle, predicates, prepared_relations


@pytest.fixture(scope="module", autouse=True)
def _serial_parallel_backend():
    """Run the workers-composition property on the in-process serial
    backend: spawning a process pool per Hypothesis example is pure
    overhead, and the serial backend executes the identical shard code."""
    old = os.environ.get("REPRO_PARALLEL_BACKEND")
    os.environ["REPRO_PARALLEL_BACKEND"] = "serial"
    yield
    if old is None:
        os.environ.pop("REPRO_PARALLEL_BACKEND", None)
    else:
        os.environ["REPRO_PARALLEL_BACKEND"] = old


class TestPartitionBySetSize:
    def test_partitions_cover_all_groups(self):
        p = PreparedRelation.from_strings(["a", "a b", "a b c", "a b c d"], words)
        parts = partition_by_set_size(p)
        merged = set(parts["small"].groups) | set(parts["large"].groups)
        assert merged == set(p.groups)
        assert not set(parts["small"].groups) & set(parts["large"].groups)

    def test_norms_preserved(self):
        p = PreparedRelation.from_strings(["a b c"], words, norm="length")
        parts = partition_by_set_size(p, boundary=10)
        assert parts["small"].norm("a b c") == 5.0

    def test_explicit_boundary(self):
        p = PreparedRelation.from_strings(["a", "a b c d e"], words)
        parts = partition_by_set_size(p, boundary=1)
        assert set(parts["small"].groups) == {"a"}
        assert set(parts["large"].groups) == {"a b c d e"}

    def test_empty_relation(self):
        parts = partition_by_set_size(PreparedRelation.from_sets({}, name="e"))
        # Both halves must be *distinct*, properly-named empty relations —
        # not the input aliased as "small" (the old behavior double-counted
        # the relation under a misleading name downstream).
        assert parts["small"].num_groups == 0
        assert parts["large"].num_groups == 0
        assert parts["small"] is not parts["large"]
        assert parts["small"].name == "e[small]"
        assert parts["large"].name == "e[large]"


class TestPartitionedJoin:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_equals_oracle(self, left, right, predicate):
        expected = oracle(left, right, predicate)
        got = partitioned_ssjoin(left, right, predicate)
        assert got.pair_set() == expected

    def test_equals_basic_on_mixed_sizes(self):
        values = ["a", "a b", "the a b c d e f", "the a b c d e g", "the x"]
        p = PreparedRelation.from_strings(values, words)
        pred = OverlapPredicate.two_sided(0.5)
        got = partitioned_ssjoin(p, p, pred)
        expected = basic_ssjoin(p, p, pred)
        assert got.pair_set() == {(r[0], r[1]) for r in expected.rows}

    def test_choices_recorded(self):
        values = [f"tok{i} the" for i in range(10)] + ["a b c d e f g h i j"]
        p = PreparedRelation.from_strings(values, words)
        result = partitioned_ssjoin(p, p, OverlapPredicate.two_sided(0.8))
        assert set(result.choices) == {"small", "large"}
        assert all(
            c in ("basic", "prefix", "inline", "probe",
                  "encoded-prefix", "encoded-probe", "(empty)")
            for c in result.choices.values()
        )
        assert "choices=" in repr(result)

    def test_custom_partition_function(self):
        p = PreparedRelation.from_strings(["aa x", "bb x"], words)

        def by_first_letter(prepared):
            return {
                "a": PreparedRelation.from_sets(
                    {k: v for k, v in prepared.groups.items() if k.startswith("a")}
                ),
                "b": PreparedRelation.from_sets(
                    {k: v for k, v in prepared.groups.items() if k.startswith("b")}
                ),
            }

        result = partitioned_ssjoin(
            p, p, OverlapPredicate.absolute(1.0), partition=by_first_letter
        )
        # Every left group still joins against the full right side.
        assert ("aa x", "bb x") in result.pair_set()
        assert ("bb x", "aa x") in result.pair_set()

    def test_empty_partition_function_rejected(self):
        p = PreparedRelation.from_strings(["a"], words)
        with pytest.raises(PlanError):
            partitioned_ssjoin(
                p, p, OverlapPredicate.absolute(1.0), partition=lambda _: {}
            )

    @given(
        prepared_relations("r"),
        prepared_relations("s"),
        predicates(),
        st.sampled_from([None, 1, 2]),
    )
    @settings(max_examples=60, deadline=None)
    def test_composes_with_parallel_executor(
        self, left, right, predicate, workers
    ):
        """Satellite: union over partition_by_set_size sub-joins, each run
        through the parallel executor, equals the unpartitioned sequential
        join — for every worker count including the sequential default."""
        expected = oracle(left, right, predicate)
        got = partitioned_ssjoin(left, right, predicate, workers=workers)
        assert got.pair_set() == expected

    def test_metrics_accumulate_across_partitions(self):
        values = ["a b", "a c", "long one two three four five"]
        p = PreparedRelation.from_strings(values, words)
        m = ExecutionMetrics()
        partitioned_ssjoin(p, p, OverlapPredicate.absolute(1.0), metrics=m)
        assert m.prepared_rows > 0
        assert m.output_pairs == len(
            partitioned_ssjoin(p, p, OverlapPredicate.absolute(1.0)).pairs
        )
