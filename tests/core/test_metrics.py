"""Unit tests for ExecutionMetrics."""

import time

from repro.core.metrics import (
    PHASE_FILTER,
    PHASE_PREP,
    PHASE_SSJOIN,
    ExecutionMetrics,
)


class TestPhases:
    def test_phase_accumulates_time(self):
        m = ExecutionMetrics()
        with m.phase(PHASE_PREP):
            time.sleep(0.002)
        assert m.seconds(PHASE_PREP) > 0

    def test_phase_reentry_adds(self):
        m = ExecutionMetrics()
        with m.phase(PHASE_PREP):
            pass
        first = m.seconds(PHASE_PREP)
        with m.phase(PHASE_PREP):
            time.sleep(0.002)
        assert m.seconds(PHASE_PREP) > first

    def test_phase_records_on_exception(self):
        m = ExecutionMetrics()
        try:
            with m.phase(PHASE_SSJOIN):
                raise ValueError("boom")
        except ValueError:
            pass
        assert PHASE_SSJOIN in m.phase_seconds

    def test_total_is_sum(self):
        m = ExecutionMetrics()
        m.phase_seconds = {PHASE_PREP: 1.0, PHASE_FILTER: 0.5}
        assert m.total_seconds == 1.5

    def test_unknown_phase_is_zero(self):
        assert ExecutionMetrics().seconds("nope") == 0.0


class TestMerge:
    def test_merge_adds_counters_and_times(self):
        a = ExecutionMetrics()
        a.candidate_pairs = 3
        a.phase_seconds[PHASE_PREP] = 1.0
        b = ExecutionMetrics()
        b.candidate_pairs = 4
        b.similarity_comparisons = 7
        b.phase_seconds[PHASE_PREP] = 0.5
        b.phase_seconds[PHASE_FILTER] = 2.0
        a.merge(b)
        assert a.candidate_pairs == 7
        assert a.similarity_comparisons == 7
        assert a.phase_seconds[PHASE_PREP] == 1.5
        assert a.phase_seconds[PHASE_FILTER] == 2.0


class TestSummary:
    def test_summary_mentions_counts(self):
        m = ExecutionMetrics()
        m.implementation = "prefix"
        m.candidate_pairs = 42
        text = m.summary()
        assert "prefix" in text
        assert "candidates=42" in text
