"""Satellite 3 (PR-6): the vectorized batch path ≡ the row path, bit for bit.

Hypothesis drives random prepared relations and all six predicate families
(reusing the strategies from the core implementation suite) through one
composed plan tree — ``SSJoin → σ → π̂ → π`` — executed on the legacy
row-at-a-time protocol (``batch_size=0``) and on morsel capacities
{1, 7, 4096}, for every physical implementation and for workers ∈
{1, 2, 4} on the in-process serial backend.  Every configuration must
produce the same rows down to float bits and the same deterministic
counters (``output_pairs``, ``candidate_pairs``, the verification-engine
stats).  The worker sweep doubles as the satellite-2 regression: the
serial parallel backend funnels its merged columns through the same
single boundary adapter as the sequential path, so its metrics cannot
drift from the one-worker run.
"""

import os

import pytest
from hypothesis import given, settings

from repro.core.metrics import ExecutionMetrics
from repro.core.prepared import PreparedRelation
from repro.core.predicate import OverlapPredicate
from repro.core.ssjoin import SSJoin
from repro.parallel import BACKEND_SERIAL, canonical_sort_key, parallel_ssjoin
from repro.relational.aggregates import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.relational.batch import ColumnarRelation
from repro.relational.context import ExecutionContext
from repro.relational.expressions import col
from repro.relational.plan import (
    Distinct,
    Extend,
    GroupBy,
    HashJoin,
    LeftOuterJoin,
    MergeJoin,
    OrderBy,
    PreparedInput,
    Project,
    Select,
    SSJoinNode,
)
from repro.tokenize.sets import WeightedSet

from tests.core.test_implementations import predicates, prepared_relations

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)

WORKERS = (1, 2, 4)

#: Morsel capacities the equivalence sweep exercises: degenerate
#: one-row batches, a small odd size that never divides the input
#: evenly, and the production default.
BATCH_SIZES = (1, 7, 4096)


@pytest.fixture(scope="module", autouse=True)
def _serial_backend():
    """Route ctx.workers plan executions through the in-process backend."""
    old = os.environ.get("REPRO_PARALLEL_BACKEND")
    os.environ["REPRO_PARALLEL_BACKEND"] = "serial"
    yield
    if old is None:
        del os.environ["REPRO_PARALLEL_BACKEND"]
    else:
        os.environ["REPRO_PARALLEL_BACKEND"] = old


def _build_plan(left, right, predicate, implementation):
    """``SSJoin → σ(norm_r ≤ norm_s) → π̂(weight) → π`` — one node per
    vectorized operator family, so every batch kernel is on the path."""
    node = SSJoinNode(
        PreparedInput(left),
        PreparedInput(right),
        predicate,
        implementation=implementation,
    )
    filtered = Select(node, col("norm_r") <= col("norm_s"))
    extended = Extend(filtered, "weight", col("overlap") * 2.0 + col("norm_r"))
    return Project(extended, ["a_r", "a_s", "overlap", "weight"])


def _execute(left, right, predicate, implementation, batch_size, workers=None):
    plan = _build_plan(left, right, predicate, implementation)
    metrics = ExecutionMetrics()
    relation = plan.execute(
        ExecutionContext(metrics=metrics, batch_size=batch_size, workers=workers)
    )
    return list(relation.rows), metrics


def _assert_counters_equal(got, expected, label):
    assert got.output_pairs == expected.output_pairs, label
    assert got.candidate_pairs == expected.candidate_pairs, label
    assert got.verify_stats() == expected.verify_stats(), label


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
class TestBatchMatchesRow:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=25, deadline=None)
    def test_batch_sizes_identical(self, implementation, left, right, predicate):
        row_rows, row_metrics = _execute(
            left, right, predicate, implementation, batch_size=0
        )
        for size in BATCH_SIZES:
            batch_rows, batch_metrics = _execute(
                left, right, predicate, implementation, batch_size=size
            )
            # Exact list equality: same rows, same order, same float bits.
            assert batch_rows == row_rows, f"batch_size={size}"
            _assert_counters_equal(
                batch_metrics, row_metrics, f"batch_size={size}"
            )

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=10, deadline=None)
    def test_workers_times_batch_sizes_identical(
        self, implementation, left, right, predicate
    ):
        base_rows, base_metrics = _execute(
            left, right, predicate, implementation, batch_size=0
        )
        # The parallel merge emits canonical sorted order; the sequential
        # path keeps first-seen order — compare order-independently but
        # deterministically, by the full row repr.
        expected = sorted(base_rows, key=repr)
        for workers in WORKERS:
            # Verify-engine counters may differ between sequential and
            # group-hash-sharded execution (shard-local signatures), so
            # across workers only the join counters are pinned — but
            # across batch sizes, at a fixed worker count, *every*
            # counter must be identical: batching is pure plumbing.
            reference = None
            for size in (0,) + BATCH_SIZES:
                rows, metrics = _execute(
                    left,
                    right,
                    predicate,
                    implementation,
                    batch_size=size,
                    workers=workers,
                )
                label = f"workers={workers} batch_size={size}"
                assert sorted(rows, key=repr) == expected, label
                assert metrics.output_pairs == base_metrics.output_pairs, label
                assert (
                    metrics.candidate_pairs == base_metrics.candidate_pairs
                ), label
                if reference is None:
                    reference = metrics
                else:
                    assert (
                        metrics.verify_stats() == reference.verify_stats()
                    ), label


#: Vectorized-tail plan shapes layered over the SSJoin source — one per
#: batch kernel family added in PR 9 (hash aggregate, HAVING, global
#: aggregate, distinct, build/probe joins, sort-merge, outer join).
TAIL_PLANS = (
    "group-order",
    "having",
    "global-agg",
    "distinct",
    "hash-join",
    "merge-join",
    "left-join",
)


def _tail_plan(kind, left, right, predicate):
    base = SSJoinNode(
        PreparedInput(left),
        PreparedInput(right),
        predicate,
        implementation="prefix",
    )
    if kind == "group-order":
        grouped = GroupBy(
            base,
            ["a_r"],
            [
                agg_count("n"),
                agg_sum("s", col("overlap")),
                agg_min("lo", col("norm_s")),
                agg_max("hi", col("norm_s")),
                agg_avg("mean", col("overlap")),
            ],
        )
        return OrderBy(grouped, [("n", "desc"), "a_r"])
    if kind == "having":
        return GroupBy(base, ["a_s"], [agg_count("n")], having=col("n") >= 2)
    if kind == "global-agg":
        return GroupBy(
            base,
            [],
            [agg_count("n"), agg_sum("s", col("overlap")), agg_avg("mean", col("norm_r"))],
        )
    if kind == "distinct":
        return OrderBy(Distinct(Project(base, ["a_r"])), ["a_r"])
    # Join shapes: grouped match counts probed against the distinct set of
    # partners that won the norm comparison, so the outer join really sees
    # unmatched build rows.
    grouped = GroupBy(base, ["a_r"], [agg_count("n")])
    matched = Distinct(
        Project(Select(base, col("norm_s") <= col("norm_r")), ["a_s"])
    )
    if kind == "hash-join":
        return HashJoin(grouped, matched, keys=[("a_r", "a_s")])
    if kind == "merge-join":
        return MergeJoin(grouped, matched, keys=[("a_r", "a_s")])
    return LeftOuterJoin(grouped, matched, keys=[("a_r", "a_s")])


def _execute_tail(kind, left, right, predicate, batch_size, workers=None):
    plan = _tail_plan(kind, left, right, predicate)
    metrics = ExecutionMetrics()
    relation = plan.execute(
        ExecutionContext(metrics=metrics, batch_size=batch_size, workers=workers)
    )
    return list(relation.rows), metrics


@pytest.mark.parametrize("kind", TAIL_PLANS)
class TestVectorizedTailMatchesRow:
    """PR-9 tentpole: aggregation, sort, distinct and join batch kernels
    reproduce the row path bit for bit at every morsel capacity."""

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=15, deadline=None)
    def test_batch_sizes_identical(self, kind, left, right, predicate):
        row_rows, row_metrics = _execute_tail(
            kind, left, right, predicate, batch_size=0
        )
        for size in BATCH_SIZES:
            batch_rows, batch_metrics = _execute_tail(
                kind, left, right, predicate, batch_size=size
            )
            assert batch_rows == row_rows, f"{kind} batch_size={size}"
            _assert_counters_equal(
                batch_metrics, row_metrics, f"{kind} batch_size={size}"
            )

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=5, deadline=None)
    def test_workers_fixed_batch_sizes_identical(
        self, kind, left, right, predicate
    ):
        # Parallel SSJoin merges shards in canonical order, which can
        # permute group discovery order relative to the sequential scan —
        # so rows are pinned per worker count, across morsel sizes.
        for workers in WORKERS:
            reference_rows = None
            reference_metrics = None
            for size in (0,) + BATCH_SIZES:
                rows, metrics = _execute_tail(
                    kind, left, right, predicate, batch_size=size, workers=workers
                )
                label = f"{kind} workers={workers} batch_size={size}"
                if reference_rows is None:
                    reference_rows = rows
                    reference_metrics = metrics
                else:
                    assert rows == reference_rows, label
                    _assert_counters_equal(metrics, reference_metrics, label)


class TestSerialBackendBoundaryAdapter:
    """Satellite 2: one shared boundary adapter for the serial backend."""

    LEFT = {
        "r0": WeightedSet({"a": 0.5, "b": 1.0, "c": 2.0}),
        "r1": WeightedSet({"b": 1.0, "c": 2.0, "d": 0.25}),
        "r2": WeightedSet({"a": 0.5, "e": 1.5}),
        "r3": WeightedSet({"c": 2.0, "e": 1.5, "f": 3.0}),
    }
    RIGHT = {
        "s0": WeightedSet({"a": 0.5, "b": 1.0}),
        "s1": WeightedSet({"c": 2.0, "d": 0.25, "e": 1.5}),
        "s2": WeightedSet({"e": 1.5, "f": 3.0, "g": 0.8}),
    }

    def _relations(self):
        left = PreparedRelation.from_sets(self.LEFT, name="r")
        right = PreparedRelation.from_sets(self.RIGHT, name="s")
        return left, right, OverlapPredicate.absolute(1.0)

    def test_columnar_pairs_and_metrics_match_sequential(self):
        left, right, predicate = self._relations()
        seq_metrics = ExecutionMetrics()
        seq = SSJoin(left, right, predicate).execute(
            "prefix", metrics=seq_metrics
        )
        expected = sorted(seq.pairs.rows, key=canonical_sort_key)
        for workers in WORKERS:
            metrics = ExecutionMetrics()
            result = parallel_ssjoin(
                left,
                right,
                predicate,
                workers=workers,
                implementation="prefix",
                metrics=metrics,
                backend=BACKEND_SERIAL,
            )
            # When shards actually ran, the canonical adapter hands back
            # a columnar relation — the workers shipped columns and no
            # path re-materialized rows (workers=1 short-circuits to the
            # sequential engine, whose output stays row-backed).
            if result.parallel.mode != "sequential":
                assert isinstance(result.pairs, ColumnarRelation), workers
            assert list(result.pairs.rows) == expected, workers
            _assert_counters_equal(metrics, seq_metrics, workers)

    def test_sequential_fallback_uses_same_adapter(self):
        # workers="auto" on a tiny input resolves to the in-process
        # sequential path, which now flows through the same
        # _canonical_relation adapter as the merged parallel result.
        left, right, predicate = self._relations()
        result = parallel_ssjoin(
            left,
            right,
            predicate,
            workers="auto",
            implementation="prefix",
            backend=BACKEND_SERIAL,
        )
        rows = list(result.pairs.rows)
        assert rows == sorted(rows, key=canonical_sort_key)
