"""Unit tests for PreparedRelation (the normalized set representation)."""

import pytest

from repro.core.prepared import (
    NORM_CARDINALITY,
    NORM_LENGTH,
    NORM_WEIGHT,
    PreparedRelation,
)
from repro.errors import ReproError
from repro.tokenize.qgrams import qgrams
from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import TableWeights
from repro.tokenize.words import words


class TestFromStrings:
    def test_figure1_shape(self):
        """Figure 1: 'microsoft corp' with its 3-grams, norm = length 14."""
        p = PreparedRelation.from_strings(
            ["microsoft corp"], lambda s: qgrams(s, 3), norm=NORM_LENGTH
        )
        assert p.num_groups == 1
        assert p.norm("microsoft corp") == 14.0
        assert p.num_elements == 12  # 14 - 3 + 1

    def test_duplicates_collapse(self):
        p = PreparedRelation.from_strings(["a b", "a b"], words)
        assert p.num_groups == 1

    def test_norm_kinds(self):
        weights = TableWeights({"a": 2.0, "bb": 3.0})
        for kind, expected in [
            (NORM_WEIGHT, 5.0),
            (NORM_CARDINALITY, 2.0),
            (NORM_LENGTH, 4.0),
        ]:
            p = PreparedRelation.from_strings(["a bb"], words, weights=weights, norm=kind)
            assert p.norm("a bb") == expected

    def test_unknown_norm_kind(self):
        with pytest.raises(ReproError):
            PreparedRelation.from_strings(["x"], words, norm="bogus")

    def test_multiset_elements_are_ordinal_pairs(self):
        p = PreparedRelation.from_strings(["the the"], words)
        assert ("the", 1) in p.group("the the")
        assert ("the", 2) in p.group("the the")


class TestFromPairs:
    def test_groups_by_first_component(self):
        p = PreparedRelation.from_pairs([("x", "p1"), ("x", "p2"), ("y", "p1")])
        assert p.num_groups == 2
        assert len(p.group("x")) == 2

    def test_duplicate_pairs_ordinal_encoded(self):
        p = PreparedRelation.from_pairs([("x", "p"), ("x", "p")])
        assert ("p", 2) in p.group("x")


class TestFromSets:
    def test_wraps_directly(self):
        s = WeightedSet({"e": 2.0})
        p = PreparedRelation.from_sets({"k": s})
        assert p.group("k") is s
        assert p.norm("k") == 2.0

    def test_explicit_norms(self):
        p = PreparedRelation.from_sets({"k": WeightedSet({"e": 2.0})}, norms={"k": 9.0})
        assert p.norm("k") == 9.0

    def test_missing_norms_rejected(self):
        with pytest.raises(ReproError):
            PreparedRelation.from_sets(
                {"k": WeightedSet({"e": 1.0})}, norms={"other": 1.0}
            )


class TestRelationView:
    def test_schema_and_rows(self):
        p = PreparedRelation.from_strings(["a b"], words, name="T")
        rel = p.relation
        assert rel.column_names == ("a", "b", "w", "norm")
        assert rel.num_rows == 2
        assert rel.name == "T"

    def test_cached(self):
        p = PreparedRelation.from_strings(["a"], words)
        assert p.relation is p.relation

    def test_norm_repeated_per_element(self):
        p = PreparedRelation.from_strings(["a b c"], words)
        assert set(p.relation.column_values("norm")) == {3.0}


class TestFrequencies:
    def test_element_frequencies_count_groups(self):
        p = PreparedRelation.from_strings(["a b", "a c"], words)
        freq = p.element_frequencies()
        assert freq[("a", 1)] == 2
        assert freq[("b", 1)] == 1

    def test_len_and_repr(self):
        p = PreparedRelation.from_strings(["a b", "c"], words, name="P")
        assert len(p) == 2
        assert "P" in repr(p)
