"""Regression: the ElementOrdering overflow table is bounded.

PR 1 made unseen-element ranks allocation-free by memoizing them in an
overflow dict — which grew without bound in long-lived sessions (one
entry per distinct unseen element, forever). The table is now capped:
past ``max_overflow`` entries, ranks are *computed* from the element repr
instead of stored.
"""

from repro.core.ordering import ElementOrdering, frequency_ordering
from repro.core.prepared import PreparedRelation
from repro.tokenize.words import words


def test_overflow_table_is_capped():
    o = ElementOrdering({"a": 0, "b": 1}, max_overflow=8)
    for i in range(1000):
        o.key(f"unseen-{i}")
    assert o.overflow_size == 8


def test_ranks_stay_distinct_and_stable_past_the_cap():
    o = ElementOrdering({"a": 0, "b": 1}, max_overflow=4)
    first = [o.key(f"tok{i}") for i in range(64)]
    second = [o.key(f"tok{i}") for i in range(64)]
    assert first == second  # stable on re-query
    assert len(set(first)) == 64  # injective fallback


def test_all_unseen_elements_sort_after_ranked_ones():
    o = ElementOrdering({"a": 0, "b": 1}, max_overflow=2)
    unseen = [o.key(f"tok{i}") for i in range(10)]
    assert min(unseen) > o.key("b")


def test_tiers_do_not_interleave():
    # Memoized overflow ranks all sort before computed fallback ranks,
    # even though assignment order and repr order differ.
    o = ElementOrdering({}, max_overflow=2)
    memoized = [o.key("zz-first"), o.key("yy-second")]  # fill the table
    computed = [o.key(f"aa-{i}") for i in range(5)]
    assert max(memoized) < min(computed)


def test_computed_ranks_are_process_independent():
    # Unlike memoized ranks (first-seen order), computed ranks depend
    # only on the element itself.
    o1 = ElementOrdering({"a": 0}, max_overflow=0)
    o2 = ElementOrdering({"a": 0}, max_overflow=0)
    assert o1.key("x") == o2.key("x")
    assert [o1.key(e) for e in ("p", "q", "r")] == [
        o2.key(e) for e in ("r", "q", "p")
    ][::-1]


def test_prefix_filter_unaffected_by_cap():
    # A join whose probe elements exceed the cap still produces the same
    # result order: the ordering stays total and deterministic.
    left = PreparedRelation.from_strings(
        ["data cleaning primer", "similarity joins"], words
    )
    ordering = frequency_ordering(left)
    tight = ElementOrdering(ordering.rank_table(), max_overflow=1)
    novel = [f"never-seen-{i}" for i in range(8)]
    ranks = sorted(tight.key(e) for e in novel)
    assert len(set(ranks)) == len(novel)


def test_default_cap_is_generous():
    o = ElementOrdering({})
    assert o.DEFAULT_MAX_OVERFLOW == 1 << 16
