"""Unit + property tests for the overlap predicate language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicate import (
    AbsoluteBound,
    LeftNormBound,
    MaxNormBound,
    OverlapPredicate,
    RightNormBound,
    SumNormBound,
)
from repro.errors import PredicateError

norms = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestBounds:
    def test_absolute(self):
        b = AbsoluteBound(5.0)
        assert b.value(1, 99) == 5.0
        assert b.lower_bound_left(1) == 5.0
        assert b.lower_bound_right(99) == 5.0

    def test_absolute_rejects_non_positive(self):
        with pytest.raises(PredicateError):
            AbsoluteBound(0.0)

    def test_left_norm(self):
        b = LeftNormBound(0.8)
        assert b.value(10, 99) == pytest.approx(8.0)
        assert b.lower_bound_left(10) == pytest.approx(8.0)
        assert b.lower_bound_right(99) == 0.0  # knows nothing of the left

    def test_right_norm(self):
        b = RightNormBound(0.8, offset=1.0)
        assert b.value(99, 10) == pytest.approx(9.0)
        assert b.lower_bound_right(10) == pytest.approx(9.0)
        assert b.lower_bound_left(99) == 1.0

    def test_max_norm_edit_reduction(self):
        # Property 4 at q=3, eps=1: Overlap >= max - 2 - 3.
        b = MaxNormBound(1.0, offset=float(1 - 3 - 1 * 3))
        assert b.value(14, 13) == pytest.approx(14 - 5)

    def test_sum_norm_hamming_reduction(self):
        b = SumNormBound(0.5, 0.5, -1.0)
        assert b.value(4, 6) == pytest.approx(4.0)

    def test_negative_fractions_rejected(self):
        with pytest.raises(PredicateError):
            LeftNormBound(-0.1)
        with pytest.raises(PredicateError):
            MaxNormBound(-1.0)
        with pytest.raises(PredicateError):
            SumNormBound(-0.5, 0.5)

    @given(norms, norms)
    @settings(max_examples=100, deadline=None)
    def test_lower_bounds_are_sound(self, l, r):
        """lower_bound_left(l) <= value(l, r) for every bound type."""
        bounds = [
            AbsoluteBound(3.0),
            LeftNormBound(0.7, 0.5),
            RightNormBound(0.7, 0.5),
            MaxNormBound(0.9, -2.0),
            SumNormBound(0.4, 0.6, -1.0),
        ]
        for b in bounds:
            assert b.lower_bound_left(l) <= b.value(l, r) + 1e-9
            assert b.lower_bound_right(r) <= b.value(l, r) + 1e-9


class TestOverlapPredicate:
    def test_requires_bounds(self):
        with pytest.raises(PredicateError):
            OverlapPredicate([])

    def test_rejects_non_bounds(self):
        with pytest.raises(PredicateError):
            OverlapPredicate(["not a bound"])

    def test_threshold_is_max_of_conjuncts(self):
        p = OverlapPredicate([LeftNormBound(0.5), RightNormBound(0.5)])
        assert p.threshold(10, 20) == pytest.approx(10.0)

    def test_satisfied(self):
        p = OverlapPredicate.two_sided(0.5)
        assert p.satisfied(10.0, 10, 20)
        assert not p.satisfied(9.0, 10, 20)

    def test_satisfied_tolerates_float_noise(self):
        p = OverlapPredicate.absolute(3.0)
        assert p.satisfied(3.0 - 1e-12, 0, 0)

    def test_filter_thresholds(self):
        p = OverlapPredicate.two_sided(0.8)
        assert p.left_filter_threshold(10) == pytest.approx(8.0)
        assert p.right_filter_threshold(5) == pytest.approx(4.0)

    def test_one_sided_constructor(self):
        p = OverlapPredicate.one_sided(0.8, side="right")
        assert p.threshold(1, 10) == pytest.approx(8.0)
        with pytest.raises(PredicateError):
            OverlapPredicate.one_sided(0.8, side="middle")

    def test_max_norm_constructor(self):
        p = OverlapPredicate.max_norm(1.0, offset=-5.0)
        assert p.threshold(12, 9) == pytest.approx(7.0)

    def test_repr_mentions_every_conjunct(self):
        p = OverlapPredicate.two_sided(0.8)
        assert "R.norm" in repr(p) and "S.norm" in repr(p)

    @given(norms, norms, st.floats(min_value=0, max_value=50, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_satisfied_iff_every_conjunct_holds(self, l, r, overlap):
        p = OverlapPredicate([AbsoluteBound(2.0), LeftNormBound(0.5)])
        expected = all(overlap + 1e-9 >= b.value(l, r) for b in p.bounds)
        assert p.satisfied(overlap, l, r) == expected
