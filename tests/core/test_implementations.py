"""The central correctness property: every SSJoin physical implementation
returns exactly the pairs a brute-force oracle returns, for every predicate
shape the paper names, on randomized weighted-set families.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import basic_ssjoin
from repro.core.inline import inline_ssjoin
from repro.core.ordering import frequency_ordering, random_ordering
from repro.core.predicate import (
    AbsoluteBound,
    LeftNormBound,
    MaxNormBound,
    OverlapPredicate,
    RightNormBound,
    SumNormBound,
)
from repro.core.prefix_filter import prefix_filtered_ssjoin
from repro.core.prepared import PreparedRelation
from repro.tokenize.sets import WeightedSet

# A fixed global weight table over a small universe (Section 2's model).
_WEIGHTS = {"a": 0.5, "b": 1.0, "c": 2.0, "d": 0.25, "e": 1.5, "f": 3.0, "g": 0.8}


def oracle(left: PreparedRelation, right: PreparedRelation, predicate) -> set:
    """Brute-force: evaluate the predicate on every group pair.

    Only pairs with non-zero overlap are comparable to the equi-join based
    implementations (see the degenerate-threshold note in predicate.py).
    """
    out = set()
    for ar, s1 in left.groups.items():
        for as_, s2 in right.groups.items():
            overlap = s1.overlap(s2)
            if overlap <= 0:
                continue
            if predicate.satisfied(overlap, left.norm(ar), right.norm(as_)):
                out.add((ar, as_))
    return out


@st.composite
def prepared_relations(draw, name):
    n = draw(st.integers(min_value=0, max_value=6))
    groups = {}
    for i in range(n):
        els = draw(st.sets(st.sampled_from("abcdefg"), min_size=0, max_size=7))
        groups[f"{name}{i}"] = WeightedSet({e: _WEIGHTS[e] for e in els})
    return PreparedRelation.from_sets(groups, name=name)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(["absolute", "one_left", "one_right", "two", "max", "sum"]))
    if kind == "absolute":
        return OverlapPredicate.absolute(draw(st.floats(min_value=0.1, max_value=6.0)))
    fraction = draw(st.floats(min_value=0.05, max_value=1.0))
    if kind == "one_left":
        return OverlapPredicate([LeftNormBound(fraction)])
    if kind == "one_right":
        return OverlapPredicate([RightNormBound(fraction)])
    if kind == "two":
        return OverlapPredicate.two_sided(fraction)
    if kind == "max":
        offset = draw(st.floats(min_value=-3.0, max_value=0.0))
        return OverlapPredicate([MaxNormBound(fraction, offset)])
    offset = draw(st.floats(min_value=-3.0, max_value=0.0))
    return OverlapPredicate([SumNormBound(fraction / 2, fraction / 2, offset)])


class TestImplementationsMatchOracle:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=200, deadline=None)
    def test_basic_equals_oracle(self, left, right, predicate):
        expected = oracle(left, right, predicate)
        got = basic_ssjoin(left, right, predicate)
        assert {(r[0], r[1]) for r in got.rows} == expected

    @given(
        prepared_relations("r"),
        prepared_relations("s"),
        predicates(),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_prefix_equals_oracle_under_any_ordering(self, left, right, predicate, seed):
        expected = oracle(left, right, predicate)
        ordering = random_ordering(seed, left, right)
        got = prefix_filtered_ssjoin(left, right, predicate, ordering=ordering)
        assert {(r[0], r[1]) for r in got.rows} == expected

    @given(
        prepared_relations("r"),
        prepared_relations("s"),
        predicates(),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_inline_equals_oracle_under_any_ordering(self, left, right, predicate, seed):
        expected = oracle(left, right, predicate)
        ordering = random_ordering(seed, left, right)
        got = inline_ssjoin(left, right, predicate, ordering=ordering)
        assert {(r[0], r[1]) for r in got.rows} == expected

    @given(prepared_relations("r"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_self_join_consistency(self, rel, predicate):
        """All three implementations agree on self-joins too."""
        ordering = frequency_ordering(rel)
        b = {(r[0], r[1]) for r in basic_ssjoin(rel, rel, predicate).rows}
        p = {
            (r[0], r[1])
            for r in prefix_filtered_ssjoin(rel, rel, predicate, ordering=ordering).rows
        }
        i = {(r[0], r[1]) for r in inline_ssjoin(rel, rel, predicate, ordering=ordering).rows}
        assert b == p == i


class TestReportedOverlaps:
    @given(prepared_relations("r"), prepared_relations("s"))
    @settings(max_examples=100, deadline=None)
    def test_overlap_column_is_exact(self, left, right):
        predicate = OverlapPredicate.absolute(0.1)
        got = basic_ssjoin(left, right, predicate)
        for a_r, a_s, overlap, norm_r, norm_s in got.rows:
            true = left.group(a_r).overlap(right.group(a_s))
            assert overlap == pytest.approx(true)
            assert norm_r == pytest.approx(left.norm(a_r))
            assert norm_s == pytest.approx(right.norm(a_s))

    @given(prepared_relations("r"), prepared_relations("s"))
    @settings(max_examples=100, deadline=None)
    def test_all_implementations_report_same_overlaps(self, left, right):
        predicate = OverlapPredicate.absolute(0.1)
        ordering = frequency_ordering(left, right)

        def as_map(rel):
            return {(r[0], r[1]): r[2] for r in rel.rows}

        b = as_map(basic_ssjoin(left, right, predicate))
        p = as_map(prefix_filtered_ssjoin(left, right, predicate, ordering=ordering))
        i = as_map(inline_ssjoin(left, right, predicate, ordering=ordering))
        assert set(b) == set(p) == set(i)
        for key, val in b.items():
            assert p[key] == pytest.approx(val)
            assert i[key] == pytest.approx(val)


class TestPaperExamples:
    def test_example_1_microsoft(self):
        """Example 1: the 3-gram sets of 'Microsoft Corp' and 'Mcrosoft
        Corp' overlap in >= 10 grams."""
        from repro.core.prepared import NORM_LENGTH
        from repro.tokenize.qgrams import qgrams

        r = PreparedRelation.from_strings(
            ["Microsoft Corp"], lambda s: qgrams(s, 3), norm=NORM_LENGTH
        )
        s = PreparedRelation.from_strings(
            ["Mcrosoft Corp"], lambda t: qgrams(t, 3), norm=NORM_LENGTH
        )
        got = basic_ssjoin(r, s, OverlapPredicate.absolute(10.0))
        assert {(row[0], row[1]) for row in got.rows} == {
            ("Microsoft Corp", "Mcrosoft Corp")
        }

    def test_example_2_one_sided(self):
        """Example 2: overlap 10 is more than 80% of 12 grams."""
        from repro.core.prepared import NORM_CARDINALITY
        from repro.tokenize.qgrams import qgrams

        r = PreparedRelation.from_strings(
            ["Microsoft Corp"], lambda s: qgrams(s, 3), norm=NORM_CARDINALITY
        )
        s = PreparedRelation.from_strings(
            ["Mcrosoft Corp"], lambda t: qgrams(t, 3), norm=NORM_CARDINALITY
        )
        got = basic_ssjoin(r, s, OverlapPredicate.one_sided(0.8, side="left"))
        assert len(got) == 1

    def test_example_2_two_sided(self):
        """Example 2: 10 is more than 80% of 12 and of 11."""
        from repro.core.prepared import NORM_CARDINALITY
        from repro.tokenize.qgrams import qgrams

        r = PreparedRelation.from_strings(
            ["Microsoft Corp"], lambda s: qgrams(s, 3), norm=NORM_CARDINALITY
        )
        s = PreparedRelation.from_strings(
            ["Mcrosoft Corp"], lambda t: qgrams(t, 3), norm=NORM_CARDINALITY
        )
        got = basic_ssjoin(r, s, OverlapPredicate.two_sided(0.8))
        assert len(got) == 1

    def test_states_cities_motivating_example(self):
        """Section 1's washington/wa example via co-occurring cities."""
        pairs_r = [("washington", "seattle"), ("washington", "spokane"),
                   ("washington", "tacoma"), ("wisconsin", "madison"),
                   ("wisconsin", "milwaukee")]
        pairs_s = [("wa", "seattle"), ("wa", "spokane"), ("wa", "tacoma"),
                   ("wi", "madison"), ("wi", "milwaukee")]
        r = PreparedRelation.from_pairs(pairs_r)
        s = PreparedRelation.from_pairs(pairs_s)
        got = basic_ssjoin(r, s, OverlapPredicate.one_sided(1.0, side="left"))
        assert {(row[0], row[1]) for row in got.rows} == {
            ("washington", "wa"),
            ("wisconsin", "wi"),
        }
