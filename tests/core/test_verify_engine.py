"""Unit tests for the bitmap-signature verification engine.

Covers the sound XOR-popcount bound (hostile widths included), the
bounded merge, width selection, the identity fast path, per-stage
counters, and the signature-cache staleness regression (a shared
encoding whose dictionary grows between joins must re-pack signatures).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import basic_ssjoin
from repro.core.encoded import encode_pair
from repro.core.encoded_prefix import encoded_prefix_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import (
    BYPASS_STRICTNESS,
    MAX_SIGNATURE_BITS,
    MIN_SIGNATURE_BITS,
    VerifyConfig,
    bounded_overlap_count,
    choose_signature_bits,
    engine_for_encoded,
    hashed_signature,
    required_overlap_count,
    signature_of,
    signatures_for,
)
from repro.tokenize.sets import WeightedSet

from tests.core.test_implementations import oracle, predicates, prepared_relations


def pairs_of(relation):
    return {(r[0], r[1]) for r in relation.rows}


id_sets = st.sets(st.integers(min_value=0, max_value=500), max_size=30)


class TestBitmapBound:
    @given(id_sets, id_sets, st.sampled_from([4, 8, 64, 256]))
    @settings(max_examples=300, deadline=None)
    def test_xor_popcount_bound_is_sound(self, a, b, nbits):
        """(|A| + |B| − popcount(XOR)) / 2 upper-bounds |A ∩ B| under any
        id→bit mapping — collisions included."""
        sa = signature_of(sorted(a), nbits)
        sb = signature_of(sorted(b), nbits)
        bound = (len(a) + len(b) - (sa ^ sb).bit_count()) / 2
        assert bound >= len(a & b)

    @given(id_sets, st.sampled_from([7, 64]))
    @settings(max_examples=100, deadline=None)
    def test_identical_sets_bound_is_exact_cardinality_or_more(self, a, nbits):
        sa = signature_of(sorted(a), nbits)
        bound = (2 * len(a) - (sa ^ sa).bit_count()) / 2
        assert bound == len(a)

    @given(
        st.lists(st.text(min_size=1, max_size=6), max_size=20),
        st.sampled_from([8, 64]),
    )
    @settings(max_examples=100, deadline=None)
    def test_hashed_signature_deterministic_and_sound(self, keys, nbits):
        a = sorted(set(keys))
        assert hashed_signature(a, nbits) == hashed_signature(list(a), nbits)
        sa = hashed_signature(a, nbits)
        bound = (2 * len(a) - (sa ^ sa).bit_count()) / 2
        assert bound == len(a)


class TestBoundedMerge:
    @given(id_sets, id_sets, st.integers(min_value=0, max_value=35))
    @settings(max_examples=300, deadline=None)
    def test_bounded_count_exact_or_sound_abandon(self, a, b, required):
        x, y = sorted(a), sorted(b)
        exact = len(a & b)
        got = bounded_overlap_count(x, y, required)
        if got >= 0:
            assert got == exact
        else:
            # Abandoning is only sound when the pair truly cannot reach
            # the requirement.
            assert exact < required

    @given(id_sets, id_sets)
    @settings(max_examples=100, deadline=None)
    def test_zero_requirement_never_abandons(self, a, b):
        assert bounded_overlap_count(sorted(a), sorted(b), 0) == len(a & b)

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_required_count_admits_every_qualifying_jaccard_pair(
        self, sx, sy, t
    ):
        """Any overlap count passing ``jaccard + 1e-9 >= t`` must be >= the
        required count derived from the admission inequality."""
        required = required_overlap_count(
            (t - 1e-9) / (1.0 + t - 1e-9) * (sx + sy)
        )
        for ov in range(min(sx, sy) + 1):
            union = sx + sy - ov
            jaccard = ov / union if union else 1.0
            if jaccard + 1e-9 >= t:
                assert ov >= required


class TestWidthChooser:
    def test_bypass_below_strictness(self):
        assert choose_signature_bits(1000, BYPASS_STRICTNESS - 0.01) == 0

    def test_zero_universe_bypasses(self):
        assert choose_signature_bits(0, 0.9) == 0

    def test_clamped_to_floor_and_cap(self):
        assert choose_signature_bits(10, 0.9) == MIN_SIGNATURE_BITS
        assert choose_signature_bits(10**6, 0.9) == MAX_SIGNATURE_BITS

    def test_next_power_of_two(self):
        assert choose_signature_bits(100, 0.9) == 128
        assert choose_signature_bits(200, 0.9) == 256

    def test_disabled_config_is_inert(self):
        assert VerifyConfig.disabled().inert
        assert not VerifyConfig().inert
        assert not VerifyConfig(signature_bits=0).inert  # bounds still on


class TestEngineEquivalence:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=150, deadline=None)
    def test_hostile_width_never_drops_pairs(self, left, right, predicate):
        """8-bit signatures collide hard; the engine must stay lossless."""
        expected = oracle(left, right, predicate)
        got = encoded_prefix_ssjoin(
            left, right, predicate, verify_config=VerifyConfig(signature_bits=8)
        )
        assert pairs_of(got) == expected

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_engine_rows_bit_identical_to_disabled(self, left, right, predicate):
        on = encoded_prefix_ssjoin(left, right, predicate)
        off = encoded_prefix_ssjoin(
            left, right, predicate, verify_config=VerifyConfig.disabled()
        )
        assert sorted(on.rows, key=repr) == sorted(off.rows, key=repr)

    def test_identity_fast_path_skips_merges(self):
        """Self-join (g, g) candidates are admitted from the cached group
        total — no merge — and overlaps equal the basic plan's."""
        values = [f"shared head tokens unique{i} tail" for i in range(30)]
        prep = PreparedRelation.from_strings(values, lambda s: s.split())
        predicate = OverlapPredicate.two_sided(0.9)
        m = ExecutionMetrics()
        got = encoded_prefix_ssjoin(prep, prep, predicate, metrics=m)
        expected = basic_ssjoin(prep, prep, predicate)
        assert pairs_of(got) == pairs_of(expected)
        # All 30 identity pairs are candidates yet none needed a merge.
        assert m.verify_candidates >= 30
        assert m.verify_merges_run < m.verify_candidates

    def test_counters_are_consistent(self):
        values = [f"common base words entry{i}" for i in range(40)] + [
            "completely unrelated different text"
        ]
        prep = PreparedRelation.from_strings(values, lambda s: s.split())
        m = ExecutionMetrics()
        encoded_prefix_ssjoin(prep, prep, OverlapPredicate.two_sided(0.8), metrics=m)
        pruned = m.verify_bitmap_pruned + m.verify_position_pruned
        assert m.verify_candidates == pruned + m.verify_merges_run + (
            m.verify_candidates - pruned - m.verify_merges_run
        )
        assert m.verify_merges_run + pruned <= m.verify_candidates
        stats = m.verify_stats()
        assert stats["candidates"] == m.verify_candidates
        assert stats["bitmap_pruned"] == m.verify_bitmap_pruned
        assert stats["merges_run"] == m.verify_merges_run
        assert "verify=" in m.summary()


#: Element-global weight table (Section 2's model: a token's weight is a
#: property of the element, not of the group containing it — the prefix
#: filter itself is only sound under that assumption).
_TOKEN_WEIGHTS = {f"tok{j}": 0.5 + (j * 3 % 10) / 4.0 for j in range(16)}


def _weighted_relation():
    groups = {
        f"g{i}": WeightedSet(
            {
                f"tok{j}": _TOKEN_WEIGHTS[f"tok{j}"]
                for j in range((i * 5) % 7, (i * 5) % 7 + i % 6 + 2)
            }
        )
        for i in range(12)
    }
    return PreparedRelation.from_sets(groups, name="weighted")


class TestWeightedBounds:
    def test_weighted_predicate_uses_max_weight_scaling(self):
        """With non-uniform weights the count bound alone would under-prune
        or (if misapplied) over-prune; results must equal basic exactly."""
        rel = _weighted_relation()
        for predicate in (
            OverlapPredicate.two_sided(0.85),
            OverlapPredicate.one_sided(0.9, side="left"),
            OverlapPredicate.absolute(2.5),
        ):
            got = encoded_prefix_ssjoin(
                rel, rel, predicate, verify_config=VerifyConfig(signature_bits=8)
            )
            assert pairs_of(got) == pairs_of(basic_ssjoin(rel, rel, predicate))


class TestSignatureCacheStaleness:
    """Satellite regression: shared encodings must re-pack signatures when
    the backing dictionary grows between joins."""

    def _relations(self):
        values = [f"alpha beta gamma delta unique{i}" for i in range(20)]
        return PreparedRelation.from_strings(values, lambda s: s.split())

    def test_two_joins_sharing_cached_encoding_coexist_per_width(self):
        prep = self._relations()
        predicate = OverlapPredicate.two_sided(0.9)
        r1 = encoded_prefix_ssjoin(
            prep, prep, predicate, verify_config=VerifyConfig(signature_bits=64)
        )
        r2 = encoded_prefix_ssjoin(
            prep, prep, predicate, verify_config=VerifyConfig(signature_bits=128)
        )
        enc_left, _, _ = encode_pair(prep, prep, None)  # cache hit
        assert ("signatures", 64) in enc_left.verify_cache
        assert ("signatures", 128) in enc_left.verify_cache
        expected = pairs_of(basic_ssjoin(prep, prep, predicate))
        assert pairs_of(r1) == expected
        assert pairs_of(r2) == expected

    def test_dictionary_growth_invalidates_cached_signatures(self):
        prep = self._relations()
        enc_left, _, dictionary = encode_pair(prep, prep, None)
        sigs_before = signatures_for(enc_left, 64)
        key = ("signatures", 64)
        assert enc_left.verify_cache[key][0] == len(dictionary)
        # Simulate incremental ingest growing the shared dictionary in
        # place after the encoding-cache hit handed this encoding out.
        base = len(dictionary)
        dictionary._ids["__grown_token__"] = base
        sigs_after = signatures_for(enc_left, 64)
        assert enc_left.verify_cache[key][0] == base + 1
        assert sigs_after is not sigs_before
        # The re-pack is over the same id arrays, so contents agree.
        assert sigs_after == [signature_of(ids, 64) for ids in enc_left.ids]

    def test_join_after_growth_still_matches_basic(self):
        prep = self._relations()
        predicate = OverlapPredicate.two_sided(0.9)
        encoded_prefix_ssjoin(
            prep, prep, predicate, verify_config=VerifyConfig(signature_bits=64)
        )
        enc_left, _, dictionary = encode_pair(prep, prep, None)
        dictionary._ids["__grown_token__"] = len(dictionary)
        got = encoded_prefix_ssjoin(
            prep, prep, predicate, verify_config=VerifyConfig(signature_bits=64)
        )
        assert pairs_of(got) == pairs_of(basic_ssjoin(prep, prep, predicate))
        assert enc_left.verify_cache[("signatures", 64)][0] == len(dictionary)


class TestEngineForEncoded:
    def test_inert_config_returns_none(self):
        prep = _weighted_relation()
        enc_left, enc_right, _ = encode_pair(prep, prep, None)
        assert (
            engine_for_encoded(
                enc_left, enc_right, OverlapPredicate.two_sided(0.9),
                (), (), config=VerifyConfig.disabled(),
            )
            is None
        )

    def test_self_join_shares_signatures(self):
        prep = _weighted_relation()
        enc_left, enc_right, _ = encode_pair(prep, prep, None)
        engine = engine_for_encoded(
            enc_left, enc_right, OverlapPredicate.two_sided(0.9),
            (), (), config=VerifyConfig(signature_bits=64),
        )
        assert engine is not None
        assert engine.identity
        assert engine.left_signatures is engine.right_signatures
