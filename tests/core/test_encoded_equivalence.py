"""Property: the dictionary-encoded plans are row-for-row equivalent to
the tuple plans — same pairs, same overlaps — across random weighted
multisets, every predicate shape the paper names, and boundary thresholds
sitting exactly on the ``OVERLAP_EPSILON`` edge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import basic_ssjoin
from repro.core.encoded import EncodingCache
from repro.core.encoded_index import EncodedInvertedIndex, encoded_index_probe_ssjoin
from repro.core.encoded_prefix import encoded_prefix_ssjoin
from repro.core.ordering import frequency_ordering, random_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import ssjoin
from repro.tokenize.sets import WeightedSet
from repro.tokenize.words import words

from tests.core.test_implementations import oracle, predicates, prepared_relations


def pairs_of(relation):
    return {(r[0], r[1]) for r in relation.rows}


class TestEncodedMatchesOracle:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=200, deadline=None)
    def test_encoded_prefix_equals_oracle(self, left, right, predicate):
        expected = oracle(left, right, predicate)
        got = encoded_prefix_ssjoin(left, right, predicate)
        assert pairs_of(got) == expected

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=200, deadline=None)
    def test_encoded_probe_equals_oracle(self, left, right, predicate):
        expected = oracle(left, right, predicate)
        got = encoded_index_probe_ssjoin(left, right, predicate)
        assert pairs_of(got) == expected

    @given(
        prepared_relations("r"),
        prepared_relations("s"),
        predicates(),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_encoded_prefix_equals_oracle_under_any_ordering(
        self, left, right, predicate, seed
    ):
        """Correct under ablation orderings too, not just joint frequency."""
        expected = oracle(left, right, predicate)
        ordering = random_ordering(seed, left, right)
        got = encoded_prefix_ssjoin(left, right, predicate, ordering=ordering)
        assert pairs_of(got) == expected

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_encoded_plans_report_same_overlaps_as_basic(self, left, right, predicate):
        tuple_rows = {
            (r[0], r[1]): (r[2], r[3], r[4])
            for r in basic_ssjoin(left, right, predicate).rows
        }
        for plan in (encoded_prefix_ssjoin, encoded_index_probe_ssjoin):
            got = plan(left, right, predicate)
            enc_rows = {(r[0], r[1]): (r[2], r[3], r[4]) for r in got.rows}
            assert set(enc_rows) == set(tuple_rows)
            for key, (overlap, norm_r, norm_s) in enc_rows.items():
                assert overlap == pytest.approx(tuple_rows[key][0])
                assert norm_r == tuple_rows[key][1]
                assert norm_s == tuple_rows[key][2]

    @given(prepared_relations("r"), predicates())
    @settings(max_examples=100, deadline=None)
    def test_self_join_consistency(self, rel, predicate):
        expected = oracle(rel, rel, predicate)
        assert pairs_of(encoded_prefix_ssjoin(rel, rel, predicate)) == expected
        assert pairs_of(encoded_index_probe_ssjoin(rel, rel, predicate)) == expected


class TestBoundaryThresholds:
    """Predicates sitting exactly on an achievable overlap value: the
    shared OVERLAP_EPSILON slack must admit the pair in every plan."""

    @given(prepared_relations("r"), prepared_relations("s"))
    @settings(max_examples=100, deadline=None)
    def test_absolute_threshold_exactly_at_overlap(self, left, right):
        for ar, s1 in left.groups.items():
            for as_, s2 in right.groups.items():
                overlap = s1.overlap(s2)
                if overlap <= 0:
                    continue
                pred = OverlapPredicate.absolute(overlap)
                expected = oracle(left, right, pred)
                assert pairs_of(encoded_prefix_ssjoin(left, right, pred)) == expected
                assert (
                    pairs_of(encoded_index_probe_ssjoin(left, right, pred)) == expected
                )
                return  # one boundary predicate per example is enough

    def test_jaccard_exactly_at_threshold(self):
        """Two unit-weight sets with |x∩y|/max-norm exactly 0.75."""
        r = PreparedRelation.from_strings(["a b c d"], words)
        s = PreparedRelation.from_strings(["a b c z"], words)
        pred = OverlapPredicate.two_sided(0.75)
        assert pairs_of(encoded_prefix_ssjoin(r, s, pred)) == {("a b c d", "a b c z")}
        assert pairs_of(encoded_index_probe_ssjoin(r, s, pred)) == {
            ("a b c d", "a b c z")
        }
        tight = OverlapPredicate.two_sided(0.80)
        assert pairs_of(encoded_prefix_ssjoin(r, s, tight)) == set()
        assert pairs_of(encoded_index_probe_ssjoin(r, s, tight)) == set()


class TestFacadeAndCache:
    def test_explicit_encoded_implementations_via_facade(self):
        r = PreparedRelation.from_strings(["a b c", "x y"], words)
        s = PreparedRelation.from_strings(["a b c d", "p q"], words)
        pred = OverlapPredicate.absolute(2.0)
        expected = ssjoin(r, s, pred, implementation="basic").pair_set()
        for impl in ("encoded-prefix", "encoded-probe"):
            res = ssjoin(r, s, pred, implementation=impl)
            assert res.implementation == impl
            assert res.pair_set() == expected

    def test_repeat_execution_hits_encoding_cache(self):
        """Fresh PreparedRelation objects from the same strings reuse the
        cached encoding — the benchmark-sweep access pattern."""
        values = ["enc cache one", "enc cache two", "enc cache one two"]
        pred = OverlapPredicate.two_sided(0.5)

        def run():
            p = PreparedRelation.from_strings(values, words)
            res = ssjoin(p, p, pred, implementation="encoded-prefix")
            return res

        first = run()
        second = run()
        assert second.pair_set() == first.pair_set()
        assert (
            first.metrics.encode_cache_hits + first.metrics.encode_cache_misses == 1
        )
        assert second.metrics.encode_cache_hits == 1

    def test_prebuilt_encoded_index_reused_with_unseen_probe_tokens(self):
        """Lookup mode: queries may contain tokens the index's dictionary
        has never seen; they must be ignored, not crash or collide."""
        refs = PreparedRelation.from_strings(["a b c", "c d e"], words)
        cache = EncodingCache()
        enc_refs, _, _ = cache.encode_pair(refs, refs)
        index = EncodedInvertedIndex(enc_refs)
        pred = OverlapPredicate.absolute(1.0)
        for query, expect in (("a b", 1), ("d e", 1), ("zz qq", 0)):
            q = PreparedRelation.from_strings([query], words)
            out = encoded_index_probe_ssjoin(q, refs, pred, index=index)
            assert len(out) == expect

    def test_auto_can_pick_encoded_plan(self):
        """Once an encoding is cached, auto's cost model discounts the
        encode cost and routes the repeat workload to an encoded plan."""
        values = [f"common tok{i}" for i in range(30)]
        p = PreparedRelation.from_strings(values, words)
        pred = OverlapPredicate.two_sided(0.9)
        ssjoin(p, p, pred, implementation="encoded-prefix")  # warm the cache
        res = ssjoin(p, p, pred, implementation="auto")
        assert res.implementation in ("encoded-prefix", "encoded-probe")
        assert res.pair_set() == ssjoin(p, p, pred, implementation="basic").pair_set()
