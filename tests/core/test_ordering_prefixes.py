"""Unit + property tests for element orderings and Lemma 1 prefixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import (
    frequency_ordering,
    random_ordering,
    reverse_frequency_ordering,
    weight_ordering,
)
from repro.core.prefixes import prefix_elements, prefix_of_sorted, prefix_set
from repro.core.prepared import PreparedRelation
from repro.tokenize.sets import WeightedSet
from repro.tokenize.weights import IDFWeights
from repro.tokenize.words import words


@pytest.fixture
def prepared():
    return PreparedRelation.from_strings(
        ["the cat", "the dog", "the fox", "rare token"], words
    )


class TestOrderings:
    def test_frequency_puts_rare_first(self, prepared):
        o = frequency_ordering(prepared)
        assert o.key(("rare", 1)) < o.key(("the", 1))

    def test_reverse_frequency_puts_common_first(self, prepared):
        o = reverse_frequency_ordering(prepared)
        assert o.key(("the", 1)) < o.key(("rare", 1))

    def test_unseen_elements_sort_last_deterministically(self, prepared):
        o = frequency_ordering(prepared)
        # Every unseen element sorts after every ranked element ...
        assert o.key(("zzz", 1)) > o.key(("the", 1))
        assert o.key(("aaa", 1)) > o.key(("the", 1))
        # ... with a stable rank across repeat queries and distinct ranks
        # per unseen element (total order preserved).
        assert o.key(("zzz", 1)) == o.key(("zzz", 1))
        assert o.key(("aaa", 1)) != o.key(("zzz", 1))

    def test_weight_ordering_matches_frequency_under_idf(self, prepared):
        idf = IDFWeights.fit([words(v) for v in ("the cat", "the dog", "the fox", "rare token")])
        wo = weight_ordering(idf, prepared)
        fo = frequency_ordering(prepared)
        # Rarest-first in both: 'cat' (freq 1) before 'the' (freq 3).
        assert wo.key(("cat", 1)) < wo.key(("the", 1))
        assert fo.key(("cat", 1)) < fo.key(("the", 1))

    def test_random_ordering_is_seeded(self, prepared):
        a = random_ordering(1, prepared)
        b = random_ordering(1, prepared)
        c = random_ordering(2, prepared)
        elements = list(prepared.element_frequencies())
        assert [a.key(e) for e in elements] == [b.key(e) for e in elements]
        assert [a.key(e) for e in elements] != [c.key(e) for e in elements]

    def test_rank_table_materializes(self, prepared):
        table = frequency_ordering(prepared).rank_table()
        assert len(table) == len(prepared.element_frequencies())

    def test_repr(self, prepared):
        assert "increasing-frequency" in repr(frequency_ordering(prepared))


class TestPrefixOfSorted:
    def test_stops_when_weight_exceeds_beta(self):
        items = [("a", 1.0), ("b", 1.0), ("c", 1.0)]
        assert prefix_of_sorted(items, 1.5) == ["a", "b"]

    def test_beta_zero_keeps_one(self):
        items = [("a", 1.0), ("b", 1.0)]
        assert prefix_of_sorted(items, 0.0) == ["a"]

    def test_negative_beta_prunes_group(self):
        assert prefix_of_sorted([("a", 1.0)], -0.1) == []

    def test_beta_at_least_norm_keeps_all(self):
        items = [("a", 1.0), ("b", 1.0)]
        assert prefix_of_sorted(items, 2.0) == ["a", "b"]

    def test_empty_set(self):
        assert prefix_of_sorted([], 0.0) == []


_WEIGHTS = {"a": 0.5, "b": 1.0, "c": 2.0, "d": 0.25, "e": 1.5, "f": 3.0}


@st.composite
def unit_universe_sets(draw):
    els = draw(st.sets(st.sampled_from("abcdef"), min_size=0, max_size=6))
    return WeightedSet({e: _WEIGHTS[e] for e in els})


class TestLemma1:
    """Property: Lemma 1 — overlapping sets have intersecting prefixes."""

    @given(
        unit_universe_sets(),
        unit_universe_sets(),
        st.floats(min_value=0.01, max_value=8.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=300, deadline=None)
    def test_prefixes_intersect_when_overlap_reaches_alpha(self, s1, s2, alpha, seed):
        prepared = PreparedRelation.from_sets({"s1": s1, "s2": s2})
        ordering = random_ordering(seed, prepared)
        if s1.overlap(s2) >= alpha:
            p1 = set(prefix_elements(s1, ordering, s1.norm - alpha))
            p2 = set(prefix_elements(s2, ordering, s2.norm - alpha))
            assert p1 & p2, (
                f"Lemma 1 violated: overlap={s1.overlap(s2)} >= alpha={alpha} "
                f"but prefixes {p1} and {p2} are disjoint"
            )

    @given(unit_universe_sets(), st.floats(min_value=-1.0, max_value=9.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_prefix_is_a_prefix_under_ordering(self, s, beta):
        prepared = PreparedRelation.from_sets({"s": s})
        ordering = frequency_ordering(prepared)
        kept = prefix_elements(s, ordering, beta)
        ordered = s.sorted_elements(ordering.key)
        assert kept == ordered[: len(kept)]

    @given(unit_universe_sets(), st.floats(min_value=0.0, max_value=9.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_prefix_weight_minimality(self, s, beta):
        """The prefix is the SHORTEST one whose weight exceeds beta."""
        prepared = PreparedRelation.from_sets({"s": s})
        ordering = frequency_ordering(prepared)
        kept = prefix_elements(s, ordering, beta)
        weight = sum(s.weight(e) for e in kept)
        if weight > beta and kept:
            shorter = sum(s.weight(e) for e in kept[:-1])
            assert shorter <= beta

    def test_prefix_set_returns_weighted_set(self):
        s = WeightedSet({"a": 1.0, "b": 2.0})
        prepared = PreparedRelation.from_sets({"s": s})
        ordering = frequency_ordering(prepared)
        out = prefix_set(s, ordering, 0.5)
        assert isinstance(out, WeightedSet)
        assert len(out) >= 1
