"""Unit + property tests for the inline set encoding and its overlap UDF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inline import encode_set, encoded_overlap
from repro.tokenize.sets import WeightedSet

_WEIGHTS = {"a": 0.5, "b": 1.0, "c": 2.0, "d": 0.25, "e": 1.5}


@st.composite
def sets_(draw):
    els = draw(st.sets(st.sampled_from("abcde"), max_size=5))
    return WeightedSet({e: _WEIGHTS[e] for e in els})


class TestEncoding:
    def test_empty_set(self):
        assert encode_set(WeightedSet({})) == ""
        assert encoded_overlap("", "") == 0.0

    def test_deterministic(self):
        a = WeightedSet({"b": 1.0, "a": 0.5})
        b = WeightedSet({"a": 0.5, "b": 1.0})
        assert encode_set(a) == encode_set(b)

    def test_tuple_elements_roundtrip(self):
        """Ordinal-encoded elements (token, n) must survive the encoding."""
        a = WeightedSet({("the", 1): 1.0, ("the", 2): 1.0})
        b = WeightedSet({("the", 1): 1.0, ("cat", 1): 1.0})
        assert encoded_overlap(encode_set(a), encode_set(b)) == pytest.approx(1.0)

    def test_cache_shared_across_calls(self):
        a = encode_set(WeightedSet({"a": 0.5}))
        b = encode_set(WeightedSet({"a": 0.5, "b": 1.0}))
        cache = {}
        encoded_overlap(a, b, cache)
        assert len(cache) == 2
        encoded_overlap(a, b, cache)
        assert len(cache) == 2  # reused, not re-parsed


class TestOverlapUDF:
    @given(sets_(), sets_())
    @settings(max_examples=150, deadline=None)
    def test_matches_weighted_set_overlap(self, s1, s2):
        got = encoded_overlap(encode_set(s1), encode_set(s2))
        assert got == pytest.approx(s1.overlap(s2))

    def test_left_weights_win_on_asymmetric_sets(self):
        """Out-of-model case used by the GES expansion: left's weights."""
        left = WeightedSet({"x": 5.0})
        right = WeightedSet({"x": 1.0})
        assert encoded_overlap(encode_set(left), encode_set(right)) == pytest.approx(5.0)
        assert encoded_overlap(encode_set(right), encode_set(left)) == pytest.approx(1.0)
