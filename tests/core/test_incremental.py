"""Incremental SSJoin must replay the batch self-join exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import basic_ssjoin
from repro.core.incremental import IncrementalSSJoin
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import ReproError
from repro.tokenize.sets import WeightedSet
from repro.tokenize.words import words

from tests.core.test_implementations import predicates, prepared_relations


def replay(prepared: PreparedRelation, predicate: OverlapPredicate):
    """Feed the groups one by one; accumulate every directed pair."""
    inc = IncrementalSSJoin(predicate)
    gained = set()
    for key in prepared.keys():
        for left, right, _ in inc.add(
            key, prepared.group(key), norm=prepared.norm(key)
        ):
            gained.add((left, right))
    return gained


def batch_pairs(prepared: PreparedRelation, predicate: OverlapPredicate):
    rel = basic_ssjoin(prepared, prepared, predicate)
    return {(r[0], r[1]) for r in rel.rows if r[0] != r[1]}


class TestEquivalenceWithBatch:
    @given(prepared_relations("r"), predicates())
    @settings(max_examples=150, deadline=None)
    def test_replay_equals_batch(self, prepared, predicate):
        assert replay(prepared, predicate) == batch_pairs(prepared, predicate)

    @given(prepared_relations("r"), predicates(), st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_arrival_order_irrelevant(self, prepared, predicate, seed):
        import random

        keys = list(prepared.keys())
        random.Random(seed).shuffle(keys)
        inc = IncrementalSSJoin(predicate)
        gained = set()
        for key in keys:
            for left, right, _ in inc.add(
                key, prepared.group(key), norm=prepared.norm(key)
            ):
                gained.add((left, right))
        assert gained == batch_pairs(prepared, predicate)

    def test_sample_seeded_ordering_still_exact(self):
        values = [f"the tok{i} common" for i in range(20)] + ["the tok0 common x"]
        prepared = PreparedRelation.from_strings(values, words)
        predicate = OverlapPredicate.two_sided(0.7)
        sample = PreparedRelation.from_strings(values[:5], words)
        inc = IncrementalSSJoin.from_sample(predicate, sample)
        gained = set()
        for key in prepared.keys():
            for left, right, _ in inc.add(key, prepared.group(key)):
                gained.add((left, right))
        assert gained == batch_pairs(prepared, predicate)


class TestBehaviour:
    def test_returns_exact_overlaps(self):
        inc = IncrementalSSJoin(OverlapPredicate.absolute(1.0))
        inc.add("a", WeightedSet({"x": 2.0, "y": 1.0}))
        triples = inc.add("b", WeightedSet({"x": 2.0, "z": 1.0}))
        assert {(l, r) for l, r, _ in triples} == {("a", "b"), ("b", "a")}
        assert all(ov == pytest.approx(2.0) for _, _, ov in triples)

    def test_asymmetric_directions_reported_independently(self):
        # JC(small, big) = 1.0; JC(big, small) = 2/3: at theta 0.9 only one
        # direction qualifies.
        inc = IncrementalSSJoin(OverlapPredicate.one_sided(0.9, side="left"))
        inc.add("big", WeightedSet({"x": 1.0, "y": 1.0, "z": 1.0}))
        triples = inc.add("small", WeightedSet({"x": 1.0, "y": 1.0}))
        assert [(l, r) for l, r, _ in triples] == [("small", "big")]

    def test_duplicate_key_rejected(self):
        inc = IncrementalSSJoin(OverlapPredicate.absolute(1.0))
        inc.add("a", WeightedSet({"x": 1.0}))
        with pytest.raises(ReproError):
            inc.add("a", WeightedSet({"y": 1.0}))

    def test_state_accessors(self):
        inc = IncrementalSSJoin(OverlapPredicate.absolute(1.0))
        inc.add("a", WeightedSet({"x": 1.0}))
        assert len(inc) == 1
        assert "a" in inc
        assert inc.group("a").norm == 1.0
        assert inc.keys() == ("a",)

    def test_add_tokens_convenience(self):
        inc = IncrementalSSJoin(OverlapPredicate.absolute(2.0))
        inc.add_tokens("a", ["x", "y", "z"])
        triples = inc.add_tokens("b", ["x", "y", "q"])
        assert {(l, r) for l, r, _ in triples} == {("a", "b"), ("b", "a")}

    def test_metrics_accumulate(self):
        m = ExecutionMetrics()
        inc = IncrementalSSJoin(OverlapPredicate.absolute(1.0), metrics=m)
        inc.add("a", WeightedSet({"x": 1.0}))
        inc.add("b", WeightedSet({"x": 1.0}))
        assert m.output_pairs == 2  # both directions
        assert m.similarity_comparisons >= 1

    def test_streaming_dedupe_scenario(self):
        """End-to-end: streaming addresses flag duplicates on arrival."""
        from repro.data.customers import CustomerConfig, generate_addresses
        from repro.tokenize.weights import build_weighted_set

        rows = generate_addresses(CustomerConfig(num_rows=120, seed=71))
        prepared = PreparedRelation.from_strings(rows, words)
        predicate = OverlapPredicate.two_sided(0.8)

        inc = IncrementalSSJoin.from_sample(predicate, prepared)
        gained = set()
        for key in prepared.keys():
            for left, right, _ in inc.add(key, prepared.group(key)):
                gained.add((left, right))
        assert gained == batch_pairs(prepared, predicate)
        assert len(gained) > 0
