"""Unit tests for the dictionary-encoded execution substrate:
:class:`TokenDictionary`, :class:`EncodedPreparedRelation`, the encoding
cache, and the merge-intersection kernel."""

import pytest

from repro.core.dictionary import TokenDictionary
from repro.core.encoded import (
    EncodedPreparedRelation,
    EncodingCache,
    global_encoding_cache,
)
from repro.core.encoded_prefix import merge_overlap, prefix_length
from repro.core.metrics import ExecutionMetrics
from repro.core.ordering import frequency_ordering
from repro.core.prepared import PreparedRelation
from repro.errors import ReproError
from repro.tokenize.sets import WeightedSet
from repro.tokenize.words import words


@pytest.fixture
def prepared():
    return PreparedRelation.from_strings(
        ["the cat", "the dog", "the fox", "rare token"], words
    )


class TestTokenDictionary:
    def test_ids_dense_and_frequency_ranked(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        n = len(prepared.element_frequencies())
        assert len(d) == n
        assert sorted(d.id_of(e) for e in prepared.element_frequencies()) == list(range(n))
        # 'the' is the most frequent token, so it gets the largest id.
        assert d.id_of(("the", 1)) == n - 1

    def test_ids_realize_frequency_ordering_exactly(self, prepared):
        """The dictionary's default order must be the tuple plans' default
        ordering — same ranks element-for-element — so encoded prefixes
        coincide with tuple prefixes."""
        d = TokenDictionary.from_relations(prepared)
        o = frequency_ordering(prepared)
        for e in prepared.element_frequencies():
            assert d.id_of(e) == o.key(e)

    def test_joint_universe_over_both_sides(self):
        r = PreparedRelation.from_strings(["a b"], words)
        s = PreparedRelation.from_strings(["b c"], words)
        d = TokenDictionary.from_relations(r, s)
        assert len(d) == 3
        assert d.covers([("a", 1), ("b", 1), ("c", 1)])

    def test_explicit_ordering_honored(self, prepared):
        o = frequency_ordering(prepared)
        d = TokenDictionary.from_relations(prepared, ordering=o)
        assert "ordering:" in d.description
        for e in prepared.element_frequencies():
            assert d.id_of(e) == o.key(e)

    def test_unknown_element_raises(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        with pytest.raises(ReproError):
            d.id_of(("zzz", 1))
        assert d.get(("zzz", 1)) is None
        assert ("zzz", 1) not in d

    def test_element_of_inverts(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        for e in prepared.element_frequencies():
            assert d.element_of(d.id_of(e)) == e

    def test_non_dense_ids_rejected(self):
        with pytest.raises(ReproError):
            TokenDictionary({"a": 0, "b": 2})

    def test_encode_sorted_is_sorted_with_parallel_weights(self):
        d = TokenDictionary.from_frequencies({"x": 3, "y": 1, "z": 2})
        wset = WeightedSet({"x": 1.5, "y": 0.5, "z": 2.0})
        ids, weights = d.encode_sorted(wset)
        assert list(ids) == sorted(ids)
        for i, w in zip(ids, weights):
            assert wset.weight(d.element_of(i)) == w

    def test_encode_sorted_lenient_pseudo_ids_past_the_end(self):
        d = TokenDictionary.from_frequencies({"x": 1, "y": 2})
        wset = WeightedSet({"x": 1.0, "unseen-b": 2.0, "unseen-a": 3.0})
        ids, weights = d.encode_sorted_lenient(wset)
        assert list(ids) == sorted(ids)
        # The two unseen elements sit past the dictionary range, repr-sorted.
        assert list(ids)[-2:] == [2, 3]
        assert list(weights)[-2:] == [3.0, 2.0]  # 'unseen-a' before 'unseen-b'

    def test_to_ordering_round_trip(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        o = d.to_ordering()
        for e in prepared.element_frequencies():
            assert o.key(e) == d.id_of(e)

    def test_repr(self, prepared):
        assert "joint-frequency" in repr(TokenDictionary.from_relations(prepared))


class TestEncodedPreparedRelation:
    def test_columns_parallel_and_sorted(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        enc = EncodedPreparedRelation(prepared, d)
        assert enc.keys == list(prepared.groups)
        assert enc.num_groups == prepared.num_groups
        for g, a in enumerate(enc.keys):
            assert list(enc.ids[g]) == sorted(enc.ids[g])
            assert len(enc.ids[g]) == len(enc.weights[g]) == len(prepared.groups[a])
            assert enc.norms[g] == prepared.norms[a]
            assert enc.set_norms[g] == prepared.groups[a].norm
        assert enc.num_elements == sum(len(s) for s in prepared.groups.values())

    def test_repr(self, prepared):
        d = TokenDictionary.from_relations(prepared)
        assert "groups=4" in repr(EncodedPreparedRelation(prepared, d))


class TestEncodingCache:
    def test_hit_on_content_identical_rebuild(self):
        cache = EncodingCache()
        r1 = PreparedRelation.from_strings(["a b", "c d"], words)
        s1 = PreparedRelation.from_strings(["a b c"], words)
        el1, er1, d1 = cache.encode_pair(r1, s1)
        # Fresh objects from the same strings — the benchmark-sweep shape.
        r2 = PreparedRelation.from_strings(["a b", "c d"], words)
        s2 = PreparedRelation.from_strings(["a b c"], words)
        el2, er2, d2 = cache.encode_pair(r2, s2)
        assert cache.hits == 1 and cache.misses == 1
        assert el2 is el1 and er2 is er1 and d2 is d1

    def test_miss_on_different_content(self):
        cache = EncodingCache()
        r = PreparedRelation.from_strings(["a b"], words)
        s = PreparedRelation.from_strings(["a c"], words)
        cache.encode_pair(r, r)
        cache.encode_pair(r, s)
        assert cache.misses == 2

    def test_self_join_shares_one_encoding(self):
        cache = EncodingCache()
        r = PreparedRelation.from_strings(["a b"], words)
        el, er, _ = cache.encode_pair(r, r)
        assert el is er

    def test_metrics_counters(self):
        cache = EncodingCache()
        r = PreparedRelation.from_strings(["a b"], words)
        m = ExecutionMetrics()
        cache.encode_pair(r, r, metrics=m)
        cache.encode_pair(r, r, metrics=m)
        assert m.encode_cache_misses == 1
        assert m.encode_cache_hits == 1
        assert "encode_cache=1h/1m" in m.summary()

    def test_contains_reflects_cache_state(self):
        cache = EncodingCache()
        r = PreparedRelation.from_strings(["a b"], words)
        assert not cache.contains(r, r)
        cache.encode_pair(r, r)
        assert cache.contains(r, r)

    def test_lru_eviction(self):
        cache = EncodingCache(capacity=1)
        r = PreparedRelation.from_strings(["a b"], words)
        s = PreparedRelation.from_strings(["c d"], words)
        cache.encode_pair(r, r)
        cache.encode_pair(s, s)
        assert len(cache) == 1
        assert not cache.contains(r, r)

    def test_clear(self):
        cache = EncodingCache()
        r = PreparedRelation.from_strings(["a"], words)
        cache.encode_pair(r, r)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_global_cache_is_shared(self):
        assert global_encoding_cache() is global_encoding_cache()


class TestMergeKernel:
    def test_merge_overlap_sums_left_weights(self):
        from array import array

        li = array("q", [1, 3, 5])
        lw = array("d", [0.5, 1.0, 2.0])
        ri = array("q", [2, 3, 5, 7])
        assert merge_overlap(li, lw, ri) == pytest.approx(3.0)

    def test_merge_overlap_disjoint(self):
        from array import array

        assert merge_overlap(array("q", [1]), array("d", [1.0]), array("q", [2])) == 0.0

    def test_prefix_length(self):
        from array import array

        w = array("d", [1.0, 1.0, 1.0])
        assert prefix_length(w, -0.1) == 0  # negative beta prunes the group
        assert prefix_length(w, 0.0) == 1
        assert prefix_length(w, 1.5) == 2
        assert prefix_length(w, 3.0) == 3  # beta >= norm keeps everything
