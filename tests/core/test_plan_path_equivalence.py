"""The SSJoin facade is a *thin shim* over the plan path — provably.

Satellite 1 of the Layer-7 refactor: ``SSJoin``/``ssjoin()`` must behave
exactly like a hand-built one-node plan (``SSJoinNode`` over
``PreparedInput`` leaves executed against an ``ExecutionContext``) — the
same result rows down to float bits, and the same ``ExecutionMetrics``
counters — for every physical implementation × workers ∈ {1, 2, 4}.
Workers run on the in-process serial backend so the suite stays fast and
deterministic; the process backend is covered by ``tests/parallel``.
"""

import dataclasses
import random

import pytest

from repro.core.encoded import global_encoding_cache
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin, ssjoin
from repro.parallel import BACKEND_SERIAL
from repro.relational.context import ExecutionContext
from repro.relational.plan import PreparedInput, SSJoinNode
from repro.tokenize.words import words

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
    "auto",
)

WORKERS = (1, 2, 4)

# Timings (phase_seconds) and per-shard telemetry (parallel_stats) vary
# run to run; every other field is a deterministic counter.
_NONDETERMINISTIC = {"phase_seconds", "parallel_stats"}


def _counters(metrics):
    return {
        f.name: getattr(metrics, f.name)
        for f in dataclasses.fields(metrics)
        if f.name not in _NONDETERMINISTIC
    }


def _corpus(seed, n):
    rng = random.Random(seed)
    vocab = [f"tok{i}" for i in range(30)]
    return [
        " ".join(rng.sample(vocab, rng.randint(2, 6))) for _ in range(n)
    ]


@pytest.fixture(autouse=True)
def serial_backend(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_BACKEND", BACKEND_SERIAL)


@pytest.fixture(scope="module")
def operands():
    left = PreparedRelation.from_strings(_corpus(7, 40), words, name="R")
    right = PreparedRelation.from_strings(_corpus(11, 35), words, name="S")
    return left, right


def _plan_path(left, right, predicate, implementation, workers):
    """Execute the join as an explicit plan tree, no facade involved."""
    # Cold encoding cache, so hit/miss counters match the facade's run.
    global_encoding_cache().clear()
    left_leaf = PreparedInput(left)
    right_leaf = left_leaf if right is left else PreparedInput(right)
    node = SSJoinNode(left_leaf, right_leaf, predicate, implementation=implementation)
    metrics = ExecutionMetrics()
    relation = node.execute(ExecutionContext(metrics=metrics, workers=workers))
    return relation, node.last_result, metrics


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
class TestFacadeMatchesPlanPath:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_two_relation_join(self, operands, implementation, workers):
        left, right = operands
        predicate = OverlapPredicate.two_sided(0.6)

        global_encoding_cache().clear()
        facade_metrics = ExecutionMetrics()
        facade = ssjoin(
            left,
            right,
            predicate,
            implementation=implementation,
            metrics=facade_metrics,
            workers=None if workers == 1 else workers,
        )
        relation, result, plan_metrics = _plan_path(
            left, right, predicate, implementation,
            None if workers == 1 else workers,
        )

        # Bit-identical rows: keys, overlaps, and norms, same order.
        assert list(facade.pairs.rows) == list(relation.rows)
        assert facade.implementation == result.implementation
        assert _counters(facade_metrics) == _counters(plan_metrics)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_self_join(self, operands, implementation, workers):
        left, _ = operands
        predicate = OverlapPredicate.one_sided(0.7, side="left")

        global_encoding_cache().clear()
        facade_metrics = ExecutionMetrics()
        facade = ssjoin(
            left,
            left,
            predicate,
            implementation=implementation,
            metrics=facade_metrics,
            workers=None if workers == 1 else workers,
        )
        relation, result, plan_metrics = _plan_path(
            left, left, predicate, implementation,
            None if workers == 1 else workers,
        )

        assert list(facade.pairs.rows) == list(relation.rows)
        assert facade.implementation == result.implementation
        assert _counters(facade_metrics) == _counters(plan_metrics)


class TestWorkersAgree:
    """Worker counts change telemetry, never answers or counters."""

    @pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
    def test_results_stable_across_worker_counts(self, operands, implementation):
        left, right = operands
        predicate = OverlapPredicate.absolute(2.0)
        baseline = None
        for workers in WORKERS:
            facade = ssjoin(
                left,
                right,
                predicate,
                implementation=implementation,
                workers=None if workers == 1 else workers,
            )
            rows = sorted(facade.pairs.rows)
            if baseline is None:
                baseline = rows
            else:
                assert rows == baseline, f"workers={workers}"


class TestShimIsThin:
    """The facade exposes the very node the plan path would build."""

    def test_plan_returns_ssjoin_node(self, operands):
        left, right = operands
        op = SSJoin(left, right, OverlapPredicate.absolute(1.0))
        node = op.plan("prefix")
        assert isinstance(node, SSJoinNode)
        assert node.implementation == "prefix"
        assert node.children[0].prepared is left
        assert node.children[1].prepared is right

    def test_facade_execute_populates_plan_result(self, operands):
        left, right = operands
        op = SSJoin(left, right, OverlapPredicate.absolute(2.0))
        result = op.execute("basic")
        assert op.plan("basic").last_result is result
