"""Tests for the result-verification debugging tools."""

import pytest

from repro.core.basic import RESULT_SCHEMA, basic_ssjoin
from repro.core.ordering import frequency_ordering
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.validation import explain_pair, verify_result
from repro.relational.relation import Relation
from repro.tokenize.words import words


@pytest.fixture
def operands():
    left = PreparedRelation.from_strings(["a b c", "x y", "p q r"], words)
    right = PreparedRelation.from_strings(["a b d", "x y z", "unrelated"], words)
    return left, right


class TestVerifyResult:
    def test_correct_result_passes(self, operands):
        left, right = operands
        pred = OverlapPredicate.absolute(2.0)
        result = basic_ssjoin(left, right, pred)
        report = verify_result(left, right, pred, result)
        assert report.ok
        assert report.expected_pairs == len(result)
        assert report.summary().startswith("OK")

    def test_missing_pair_detected(self, operands):
        left, right = operands
        pred = OverlapPredicate.absolute(2.0)
        result = basic_ssjoin(left, right, pred)
        truncated = Relation(result.schema, result.rows[1:])
        report = verify_result(left, right, pred, truncated)
        assert not report.ok
        assert len(report.missing) == 1
        assert "false dismissals" in report.summary()

    def test_spurious_pair_detected(self, operands):
        left, right = operands
        pred = OverlapPredicate.absolute(2.0)
        result = basic_ssjoin(left, right, pred)
        padded = Relation(
            result.schema, result.rows + (("p q r", "unrelated", 2.0, 3.0, 1.0),)
        )
        report = verify_result(left, right, pred, padded)
        assert report.spurious == {("p q r", "unrelated")}

    def test_wrong_overlap_detected(self, operands):
        left, right = operands
        pred = OverlapPredicate.absolute(2.0)
        result = basic_ssjoin(left, right, pred)
        row = list(result.rows[0])
        row[2] += 0.5  # corrupt the overlap
        broken = Relation(result.schema, [tuple(row)] + list(result.rows[1:]))
        report = verify_result(left, right, pred, broken)
        assert len(report.wrong_overlap) == 1
        ((reported, true),) = report.wrong_overlap.values()
        assert reported == pytest.approx(true + 0.5)

    def test_empty_result_on_empty_inputs(self):
        empty = PreparedRelation.from_sets({})
        report = verify_result(
            empty, empty, OverlapPredicate.absolute(1.0),
            Relation(RESULT_SCHEMA, ()),
        )
        assert report.ok
        assert report.expected_pairs == 0


class TestExplainPair:
    def test_accepting_pair(self, operands):
        left, right = operands
        text = explain_pair(
            left, right, OverlapPredicate.absolute(2.0), "a b c", "a b d"
        )
        assert "ACCEPT" in text
        assert "overlap: 2" in text

    def test_rejecting_pair(self, operands):
        left, right = operands
        text = explain_pair(
            left, right, OverlapPredicate.absolute(3.0), "a b c", "a b d"
        )
        assert "REJECT" in text

    def test_zero_overlap_note(self, operands):
        left, right = operands
        text = explain_pair(
            left, right, OverlapPredicate.absolute(1.0), "p q r", "unrelated"
        )
        assert "no equi-join plan" in text

    def test_prefix_diagnostics(self, operands):
        left, right = operands
        ordering = frequency_ordering(left, right)
        text = explain_pair(
            left, right, OverlapPredicate.absolute(2.0), "a b c", "a b d",
            ordering=ordering,
        )
        assert "prefixes:" in text
        assert "intersect=yes" in text

    def test_conjuncts_listed(self, operands):
        left, right = operands
        pred = OverlapPredicate.two_sided(0.5)
        text = explain_pair(left, right, pred, "a b c", "a b d")
        assert text.count("conjunct") == 2
