"""Satellite 3: verification-engine results ≡ basic, across everything.

The engine must be invisible in the output: for every predicate family
the paper's frontends actually build (absolute overlap, Jaccard
resemblance, edit-similarity q-gram bounds, GES-style one-sided
containment), every signature width (including 0 = bitmap disabled and
``None`` = auto-resolved), and workers 1/2/4 on the serial backend, the
result rows must equal the ``basic`` nested-loop plan's pair set and be
*bit-identical* (same rows, same float overlaps) to the engine-off
encoded plans.  A Hypothesis sweep extends the same claim to random
weighted-set relations × all six predicate shapes.
"""

import pytest
from hypothesis import given, settings
from zlib import crc32

from repro.core.basic import basic_ssjoin
from repro.core.encoded_index import encoded_index_probe_ssjoin
from repro.core.encoded_prefix import encoded_prefix_ssjoin
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import MaxNormBound, OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.verify import VerifyConfig
from repro.data.customers import CustomerConfig, generate_addresses
from repro.parallel import BACKEND_SERIAL, canonical_sort_key, parallel_ssjoin
from repro.tokenize.qgrams import padded_qgrams
from repro.tokenize.sets import WeightedSet

from tests.core.test_implementations import oracle, predicates, prepared_relations

WIDTHS = (0, 8, 64, None)
WORKERS = (1, 2, 4)


def _addresses(rows=70):
    config = CustomerConfig(num_rows=rows, duplicate_fraction=0.3, seed=20060403)
    return generate_addresses(config)


def _word_relation():
    return PreparedRelation.from_strings(
        _addresses(), lambda s: s.split(), name="words"
    )


def _qgram_relation():
    return PreparedRelation.from_strings(
        _addresses(40), lambda s: padded_qgrams(s, q=3), name="qgrams"
    )


def _ges_relation():
    # Element-global weights (a token's weight is a property of the
    # element — Section 2's model and the prefix filter's soundness
    # assumption); crc32 keeps them deterministic across processes.
    def weight(tok):
        return 0.5 + (crc32(tok.encode()) % 8) / 4.0

    groups = {}
    for i, addr in enumerate(_addresses()):
        toks = set(addr.split())
        if toks:
            groups[f"a{i}"] = WeightedSet({t: weight(t) for t in toks})
    return PreparedRelation.from_sets(groups, name="ges")


# One (relation, predicate) pair per frontend family.  The edit bound is
# edit_similarity_join's reduction at θ=0.8, q=3: fraction = 1 − q(1−θ),
# offset = 1 − q.
FAMILIES = [
    ("overlap", _word_relation, OverlapPredicate.absolute(2.0)),
    ("jaccard", _word_relation, OverlapPredicate.two_sided(0.8)),
    ("edit", _qgram_relation, OverlapPredicate([MaxNormBound(0.4, -2.0)])),
    ("ges", _ges_relation, OverlapPredicate.one_sided(0.8, side="left")),
]


def _config(width):
    return None if width is None else VerifyConfig(signature_bits=width)


def pairs_of(relation):
    return {(r[0], r[1]) for r in relation.rows}


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize(
    "family,relation_fn,predicate", FAMILIES, ids=[f[0] for f in FAMILIES]
)
class TestFamiliesMatchBasic:
    def test_sequential_rows_match_basic_and_engine_off(
        self, family, relation_fn, predicate, width
    ):
        rel = relation_fn()
        expected = pairs_of(basic_ssjoin(rel, rel, predicate))
        off = encoded_prefix_ssjoin(
            rel, rel, predicate, verify_config=VerifyConfig.disabled()
        )
        for plan in (encoded_prefix_ssjoin, encoded_index_probe_ssjoin):
            got = plan(rel, rel, predicate, verify_config=_config(width))
            assert pairs_of(got) == expected, f"{plan.__name__} width={width}"
        # Engine-on encoded-prefix rows are bit-identical to engine-off.
        on = encoded_prefix_ssjoin(rel, rel, predicate, verify_config=_config(width))
        assert sorted(on.rows, key=canonical_sort_key) == sorted(
            off.rows, key=canonical_sort_key
        )

    def test_workers_rows_and_counters_match_sequential(
        self, family, relation_fn, predicate, width, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", BACKEND_SERIAL)
        rel = relation_fn()
        cfg = _config(width)
        seq_metrics = ExecutionMetrics()
        seq = encoded_prefix_ssjoin(
            rel, rel, predicate, verify_config=cfg, metrics=seq_metrics
        )
        expected_rows = sorted(seq.rows, key=canonical_sort_key)
        for workers in WORKERS:
            m = ExecutionMetrics()
            result = parallel_ssjoin(
                rel,
                rel,
                predicate,
                workers=workers,
                implementation="encoded-prefix",
                metrics=m,
                backend=BACKEND_SERIAL,
                verify_config=cfg,
            )
            assert list(result.pairs.rows) == expected_rows, (
                f"workers={workers} width={width}"
            )
            # Shard-local pruning sums to the sequential counters exactly.
            if workers > 1:
                assert m.verify_stats() == seq_metrics.verify_stats(), (
                    f"workers={workers} width={width}"
                )


class TestRandomRelations:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=60, deadline=None)
    def test_encoded_plans_match_oracle_under_hostile_width(
        self, left, right, predicate
    ):
        expected = oracle(left, right, predicate)
        for width in (0, 8, None):
            for plan in (encoded_prefix_ssjoin, encoded_index_probe_ssjoin):
                got = plan(left, right, predicate, verify_config=_config(width))
                assert pairs_of(got) == expected, (
                    f"{plan.__name__} width={width}"
                )
