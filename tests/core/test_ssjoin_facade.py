"""Unit tests for the SSJoin facade: execute, explain, results, errors."""

import pytest

from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin, ssjoin
from repro.errors import PlanError
from repro.tokenize.words import words


@pytest.fixture
def operands():
    r = PreparedRelation.from_strings(["a b c", "x y"], words, name="R")
    s = PreparedRelation.from_strings(["a b c d", "p q"], words, name="S")
    return r, s


class TestExecute:
    def test_named_implementations(self, operands):
        r, s = operands
        pred = OverlapPredicate.absolute(2.0)
        results = {
            impl: SSJoin(r, s, pred).execute(impl).pair_set()
            for impl in ("basic", "prefix", "inline")
        }
        assert results["basic"] == results["prefix"] == results["inline"]
        assert results["basic"] == {("a b c", "a b c d")}

    def test_auto_records_estimate(self, operands):
        r, s = operands
        res = SSJoin(r, s, OverlapPredicate.absolute(2.0)).execute("auto")
        assert res.cost_estimate is not None
        assert res.implementation in (
            "basic", "prefix", "inline", "probe", "encoded-prefix", "encoded-probe",
        )

    def test_unknown_implementation(self, operands):
        r, s = operands
        with pytest.raises(PlanError):
            SSJoin(r, s, OverlapPredicate.absolute(1.0)).execute("quantum")

    def test_external_metrics_accumulated(self, operands):
        r, s = operands
        m = ExecutionMetrics()
        SSJoin(r, s, OverlapPredicate.absolute(1.0)).execute("basic", metrics=m)
        assert m.output_pairs >= 1
        assert m.implementation == "basic"

    def test_functional_shorthand(self, operands):
        r, s = operands
        res = ssjoin(r, s, OverlapPredicate.absolute(2.0), implementation="inline")
        assert res.implementation == "inline"
        assert len(res) == 1


class TestResult:
    def test_pair_tuples_and_set(self, operands):
        r, s = operands
        res = ssjoin(r, s, OverlapPredicate.absolute(2.0), implementation="basic")
        assert res.pair_tuples() == [("a b c", "a b c d")]
        assert res.pair_set() == {("a b c", "a b c d")}

    def test_result_schema(self, operands):
        r, s = operands
        res = ssjoin(r, s, OverlapPredicate.absolute(1.0), implementation="basic")
        assert res.pairs.column_names == ("a_r", "a_s", "overlap", "norm_r", "norm_s")


class TestExplain:
    def test_explain_each_shape(self, operands):
        r, s = operands
        op = SSJoin(r, s, OverlapPredicate.two_sided(0.8))
        assert "HashJoin(R.b = S.b)" in op.explain("basic")
        assert "PrefixFilter" in op.explain("prefix")
        assert "encoded_overlap" in op.explain("inline")

    def test_explain_auto_mentions_cost(self, operands):
        r, s = operands
        text = SSJoin(r, s, OverlapPredicate.two_sided(0.8)).explain("auto")
        assert "cost model" in text

    def test_explain_unknown(self, operands):
        r, s = operands
        with pytest.raises(PlanError):
            SSJoin(r, s, OverlapPredicate.absolute(1.0)).explain("bogus")

    def test_ordering_lazy_and_cached(self, operands):
        r, s = operands
        op = SSJoin(r, s, OverlapPredicate.absolute(1.0))
        assert op.ordering is op.ordering


class TestEmptyInputs:
    def test_empty_left(self):
        r = PreparedRelation.from_sets({})
        s = PreparedRelation.from_strings(["a"], words)
        for impl in ("basic", "prefix", "inline"):
            assert len(ssjoin(r, s, OverlapPredicate.absolute(1.0), impl)) == 0

    def test_both_empty(self):
        r = PreparedRelation.from_sets({})
        for impl in ("basic", "prefix", "inline"):
            assert len(ssjoin(r, r, OverlapPredicate.absolute(1.0), impl)) == 0
