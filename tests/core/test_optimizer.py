"""Unit tests for the cost model and implementation chooser."""

import pytest

from repro.core.optimizer import IMPLEMENTATIONS, CostModel, choose_implementation
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import ssjoin
from repro.tokenize.words import words


def skewed_relation(n: int = 60) -> PreparedRelation:
    """Every group shares the heavy token 'the'; tails are rare."""
    values = [f"the token{i} extra{i}" for i in range(n)]
    return PreparedRelation.from_strings(values, words)


class TestEstimates:
    def test_all_implementations_costed(self):
        rel = skewed_relation()
        estimates = CostModel().estimate_all(rel, rel, OverlapPredicate.two_sided(0.9))
        assert {e.implementation for e in estimates} == set(IMPLEMENTATIONS)
        assert all(e.cost > 0 for e in estimates)

    def test_sorted_cheapest_first(self):
        rel = skewed_relation()
        estimates = CostModel().estimate_all(rel, rel, OverlapPredicate.two_sided(0.9))
        costs = [e.cost for e in estimates]
        assert costs == sorted(costs)

    def test_basic_estimate_matches_histogram_join_size(self):
        rel = skewed_relation(20)
        estimates = CostModel().estimate_all(rel, rel, OverlapPredicate.two_sided(0.9))
        basic = next(e for e in estimates if e.implementation == "basic")
        # Self equi-join: 'the' occurs in all 20 groups -> >= 400 rows.
        assert basic.details["equijoin_rows"] >= 400

    def test_prefix_details_present(self):
        rel = skewed_relation(20)
        estimates = CostModel().estimate_all(rel, rel, OverlapPredicate.two_sided(0.9))
        prefix = next(e for e in estimates if e.implementation == "prefix")
        assert "prefix_rows" in prefix.details
        assert prefix.details["prefix_join_rows"] <= basic_join_rows(estimates)

    def test_repr(self):
        rel = skewed_relation(5)
        est = choose_implementation(rel, rel, OverlapPredicate.two_sided(0.9))
        assert est.implementation in repr(est)


def basic_join_rows(estimates):
    return next(e for e in estimates if e.implementation == "basic").details[
        "equijoin_rows"
    ]


class TestChoice:
    def test_high_threshold_on_skew_prefers_prefix_family(self):
        """Under heavy skew and a tight predicate, the filtered plans must
        be costed below basic — the paper's Figure 12 regime."""
        rel = skewed_relation(80)
        est = choose_implementation(rel, rel, OverlapPredicate.two_sided(0.95))
        assert est.implementation in (
            "prefix", "inline", "probe", "encoded-prefix", "encoded-probe",
        )

    def test_chooser_returns_minimum(self):
        rel = skewed_relation(30)
        pred = OverlapPredicate.two_sided(0.9)
        model = CostModel()
        best = choose_implementation(rel, rel, pred, model=model)
        all_est = model.estimate_all(rel, rel, pred)
        assert best.cost == min(e.cost for e in all_est)

    def test_auto_execution_is_correct_whatever_it_picks(self):
        rel = skewed_relation(25)
        pred = OverlapPredicate.two_sided(0.9)
        auto = ssjoin(rel, rel, pred, implementation="auto")
        basic = ssjoin(rel, rel, pred, implementation="basic")
        assert auto.pair_set() == basic.pair_set()
        assert auto.cost_estimate is not None


class TestCalibration:
    def test_calibrated_model_usable_by_chooser(self):
        from repro.core.optimizer import calibrate_cost_model

        rel = skewed_relation(30)
        pred = OverlapPredicate.two_sided(0.9)
        model = calibrate_cost_model(rel, rel, pred, repeats=1)
        estimates = model.estimate_all(rel, rel, pred)
        assert {e.implementation for e in estimates} == set(IMPLEMENTATIONS)
        assert all(e.cost > 0 for e in estimates)
        best = choose_implementation(rel, rel, pred, model=model)
        assert best.cost == min(e.cost for e in estimates)

    def test_calibration_improves_or_preserves_pick_on_sample(self):
        """After calibration against a sample, the chooser's pick on that
        same sample must be one of the measured-fastest plans (sanity:
        calibration is self-consistent)."""
        import time

        from repro.core.optimizer import calibrate_cost_model
        from repro.core.ssjoin import SSJoin

        rel = skewed_relation(50)
        pred = OverlapPredicate.two_sided(0.9)
        model = calibrate_cost_model(rel, rel, pred, repeats=1)
        pick = choose_implementation(rel, rel, pred, model=model).implementation

        op = SSJoin(rel, rel, pred)
        times = {}
        for impl in IMPLEMENTATIONS:
            start = time.perf_counter()
            op.execute(impl)
            times[impl] = time.perf_counter() - start
        fastest = min(times, key=times.get)
        # timing noise: accept any plan within 3x of the fastest
        assert times[pick] <= times[fastest] * 3.0
