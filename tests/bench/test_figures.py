"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.figures import figure_from_records, series_chart, stacked_bars
from repro.bench.harness import SweepRecord


def record(threshold, phases, impl="basic"):
    return SweepRecord(
        label="t",
        threshold=threshold,
        implementation=impl,
        total_seconds=sum(phases.values()),
        phase_seconds=phases,
        candidate_pairs=0,
        output_pairs=0,
        similarity_comparisons=0,
        result_pairs=0,
        prepared_rows=0,
    )


class TestStackedBars:
    def test_legend_and_bars(self):
        out = stacked_bars(
            [("a", {"x": 1.0, "y": 1.0}), ("b", {"x": 2.0})], width=10
        )
        lines = out.splitlines()
        assert lines[0].startswith("legend:")
        assert "x=#" in lines[0] and "y=*" in lines[0]
        assert lines[1].startswith("a |")
        assert "#" in lines[1] and "*" in lines[1]

    def test_scaling_relative_to_max(self):
        out = stacked_bars([("big", {"x": 10.0}), ("small", {"x": 5.0})], width=20)
        big_line, small_line = out.splitlines()[1:3]
        assert big_line.count("#") == 2 * small_line.count("#")

    def test_empty(self):
        assert stacked_bars([]) == "(no data)"

    def test_unit_suffix(self):
        out = stacked_bars([("a", {"x": 1.5})], unit="s")
        assert "1.5s" in out

    def test_missing_segment_tolerated(self):
        out = stacked_bars([("a", {"x": 1.0}), ("b", {"y": 1.0})])
        assert "b" in out

    def test_doctest_shape(self):
        out = stacked_bars(
            [("0.80", {"prep": 1.0, "join": 3.0}), ("0.90", {"prep": 1.0, "join": 1.0})],
            width=8,
        )
        assert out.splitlines()[1] == "0.80 |##******  4"


class TestFigureFromRecords:
    def test_orders_by_threshold(self):
        records = [
            record(0.9, {"prep": 0.1, "ssjoin": 0.2}),
            record(0.8, {"prep": 0.1, "ssjoin": 0.5}),
        ]
        out = figure_from_records(records, title="Fig X")
        lines = out.splitlines()
        assert lines[0] == "Fig X"
        assert lines[2].startswith("0.80")
        assert lines[3].startswith("0.90")

    def test_zero_phases_omitted_from_legend(self):
        records = [record(0.8, {"prep": 0.5})]
        out = figure_from_records(records)
        assert "filter" not in out.splitlines()[0]


class TestSeriesChart:
    def test_groups_by_x(self):
        out = series_chart(
            {"basic": [(0.8, 2.0), (0.9, 1.0)], "inline": [(0.8, 0.5)]},
            width=10,
        )
        assert "x=0.8" in out and "x=0.9" in out
        assert out.count("basic") == 2
        assert out.count("inline") == 1

    def test_empty(self):
        assert series_chart({}) == "(no data)"
