"""Tests for counter regression baselines."""

import json

import pytest

from repro.bench.baseline import COUNTER_FIELDS, CounterBaseline, counters_of
from repro.core.metrics import ExecutionMetrics
from repro.errors import BenchmarkConfigError


def metrics(**overrides) -> ExecutionMetrics:
    m = ExecutionMetrics()
    m.prepared_rows = 100
    m.prefix_rows = 20
    m.equijoin_rows = 50
    m.candidate_pairs = 10
    m.output_pairs = 5
    m.similarity_comparisons = 5
    m.result_pairs = 4
    for k, v in overrides.items():
        setattr(m, k, v)
    return m


class TestCountersOf:
    def test_extracts_all_fields(self):
        c = counters_of(metrics())
        assert set(c) == set(COUNTER_FIELDS)
        assert c["candidate_pairs"] == 10


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        b = CounterBaseline.load(path)
        b.record("exp1", metrics())
        b.save()

        reloaded = CounterBaseline.load(path)
        assert reloaded.entries["exp1"]["result_pairs"] == 4

    def test_missing_file_is_empty(self, tmp_path):
        b = CounterBaseline.load(tmp_path / "nope.json")
        assert b.entries == {}

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(BenchmarkConfigError):
            CounterBaseline.load(path)

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "b.json"
        b = CounterBaseline(path=path)
        b.record("e", metrics())
        b.save()
        assert path.exists()


class TestCompare:
    def test_identical_passes(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("e", metrics())
        assert b.compare("e", metrics(), exact=True) == []

    def test_exact_detects_any_change(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("e", metrics())
        problems = b.compare("e", metrics(candidate_pairs=11), exact=True)
        assert len(problems) == 1
        assert "candidate_pairs" in problems[0]

    def test_tolerance_allows_small_drift(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("e", metrics())
        assert b.compare("e", metrics(equijoin_rows=52), tolerance=0.05) == []

    def test_tolerance_catches_large_drift(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("e", metrics())
        problems = b.compare("e", metrics(equijoin_rows=80), tolerance=0.05)
        assert problems

    def test_unknown_entry(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        problems = b.compare("nope", metrics())
        assert "no baseline entry" in problems[0]

    def test_check_raises(self, tmp_path):
        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("e", metrics())
        with pytest.raises(BenchmarkConfigError):
            b.check("e", metrics(result_pairs=999), exact=True)


class TestEndToEnd:
    def test_real_join_counters_are_reproducible(self, tmp_path):
        """Same seed, same join -> byte-identical counters across runs."""
        from repro.data.customers import CustomerConfig, generate_addresses
        from repro.joins.jaccard_join import jaccard_resemblance_join

        def run():
            rows = generate_addresses(CustomerConfig(num_rows=100, seed=3))
            return jaccard_resemblance_join(
                rows, threshold=0.8, weights=None, implementation="inline"
            )

        b = CounterBaseline(path=tmp_path / "b.json")
        b.record("jr-inline", run().metrics)
        b.save()
        reloaded = CounterBaseline.load(tmp_path / "b.json")
        assert reloaded.compare("jr-inline", run().metrics, exact=True) == []
