"""Unit tests for the sweep harness and reporting."""

import pytest

from repro.bench.harness import SweepRunner, time_call
from repro.bench.reporting import render_phase_table, render_series, render_table
from repro.errors import BenchmarkConfigError
from repro.joins.jaccard_join import jaccard_resemblance_join

STRINGS = ["a b c", "a b d", "a b", "x y z", "x y"]


def join_fn(threshold, implementation):
    return jaccard_resemblance_join(
        STRINGS, threshold=threshold, weights=None, implementation=implementation
    )


class TestSweepRunner:
    def test_runs_grid(self):
        runner = SweepRunner("jr", join_fn)
        records = runner.run([0.5, 0.8], implementations=("basic", "inline"))
        assert len(records) == 4
        assert {r.implementation for r in records} == {"basic", "inline"}

    def test_records_capture_metrics(self):
        runner = SweepRunner("jr", join_fn)
        (record,) = runner.run([0.5], implementations=("basic",))
        assert record.threshold == 0.5
        assert record.total_seconds > 0
        assert record.result_pairs >= 1
        assert record.prepared_rows > 0

    def test_repeats_keep_fastest(self):
        runner = SweepRunner("jr", join_fn)
        (record,) = runner.run([0.5], implementations=("basic",), repeats=3)
        assert record.total_seconds > 0

    def test_by_implementation(self):
        runner = SweepRunner("jr", join_fn)
        runner.run([0.5, 0.8], implementations=("basic", "inline"))
        assert len(runner.by_implementation("basic")) == 2

    def test_validation(self):
        runner = SweepRunner("jr", join_fn)
        with pytest.raises(BenchmarkConfigError):
            runner.run([], implementations=("basic",))
        with pytest.raises(BenchmarkConfigError):
            runner.run([0.5], repeats=0)

    def test_time_call(self):
        seconds, result = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0


class TestReporting:
    def _records(self):
        runner = SweepRunner("jr", join_fn)
        return runner.run([0.5, 0.8], implementations=("basic",))

    def test_render_table_alignment(self):
        out = render_table(["col", "n"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert lines[1].startswith("---")
        assert len(lines) == 4

    def test_render_phase_table(self):
        out = render_phase_table(self._records(), title="Figure X")
        assert "Figure X" in out
        assert "threshold" in out
        assert "0.50" in out and "0.80" in out

    def test_render_series(self):
        series = render_series(self._records(), value="result_pairs")
        assert "basic" in series
        points = series["basic"]
        assert points[0][0] == 0.5 and points[1][0] == 0.8

    def test_render_series_sorted_by_threshold(self):
        runner = SweepRunner("jr", join_fn)
        runner.run([0.8, 0.5], implementations=("basic",))
        series = render_series(runner.records)
        thresholds = [t for t, _ in series["basic"]]
        assert thresholds == sorted(thresholds)

    def test_float_formatting(self):
        out = render_table(["x"], [[0.123456789]])
        assert "0.1235" in out
