"""Unit + property tests for generalized edit similarity (Definition 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ges import ges, normalized_edit_distance, transformation_cost
from repro.tokenize.weights import TableWeights

phrases = st.lists(st.sampled_from(["micro", "soft", "corp", "inc", "x"]), max_size=5).map(
    " ".join
)


class TestNormalizedEditDistance:
    def test_range(self):
        assert normalized_edit_distance("abc", "abc") == 0.0
        assert normalized_edit_distance("abc", "xyz") == 1.0

    def test_both_empty(self):
        assert normalized_edit_distance("", "") == 0.0

    def test_partial(self):
        assert normalized_edit_distance("microsoft", "mcrosoft") == pytest.approx(1 / 9)


class TestTransformationCost:
    def test_identical_is_free(self):
        assert transformation_cost(["a", "b"], ["a", "b"]) == 0.0

    def test_pure_insertions(self):
        assert transformation_cost([], ["a", "b"]) == 2.0

    def test_pure_deletions(self):
        assert transformation_cost(["a", "b"], []) == 2.0

    def test_replacement_cheaper_than_delete_insert(self):
        # 'microsoft' -> 'microsift': ed 1/9, so replace costs 1/9 < 2.
        cost = transformation_cost(["microsoft"], ["microsift"])
        assert cost == pytest.approx(1 / 9)

    def test_weights_scale_costs(self):
        w = TableWeights({"a": 10.0}, default=1.0)
        assert transformation_cost(["a"], [], weights=w) == 10.0

    def test_chooses_min_alignment(self):
        # Aligning 'corp' with 'corp' and replacing only the first token
        # beats deleting+inserting everything.
        cost = transformation_cost(["microsoft", "corp"], ["mcrosoft", "corp"])
        assert cost == pytest.approx(normalized_edit_distance("microsoft", "mcrosoft"))


class TestGES:
    def test_identity(self):
        assert ges("microsoft corp", "microsoft corp") == pytest.approx(1.0)

    def test_empty_source(self):
        assert ges("", "anything") == 0.0
        assert ges("", "") == 1.0

    def test_paper_motivation(self):
        """'microsoft corp' should be closer to 'microsft corporation' under
        GES-style reasoning than plain Jaccard would say, because 'microsoft'
        and 'microsft' are cheap replacements."""
        close = ges("microsoft corp", "microsft corp")
        far = ges("microsoft corp", "oracle systems")
        assert close > 0.9
        assert far < 0.3

    def test_weights_change_score(self):
        w = TableWeights({"corp": 0.1}, default=1.0)
        # Dropping a low-weight token barely hurts.
        assert ges("microsoft corp", "microsoft", weights=w) > ges(
            "microsoft corp", "microsoft"
        )

    def test_asymmetry(self):
        # Normalized by the source's weight: directions can differ.
        a, b = "microsoft", "microsoft corp extra tokens"
        assert ges(a, b) != ges(b, a)

    @given(phrases, phrases)
    @settings(max_examples=100, deadline=None)
    def test_unit_interval(self, a, b):
        assert 0.0 <= ges(a, b) <= 1.0

    @given(phrases)
    @settings(max_examples=50, deadline=None)
    def test_self_similarity(self, a):
        assert ges(a, a) == pytest.approx(1.0)
