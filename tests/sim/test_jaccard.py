"""Unit tests for string-level overlap/Jaccard scores."""

import pytest

from repro.sim.jaccard import (
    string_jaccard_containment,
    string_jaccard_resemblance,
    string_overlap,
)
from repro.tokenize.qgrams import qgrams
from repro.tokenize.weights import TableWeights


class TestStringOverlap:
    def test_word_overlap(self):
        assert string_overlap("microsoft corp", "microsoft inc") == 1.0

    def test_multiset_semantics(self):
        # 'the' appears twice in both: multiset overlap counts both copies.
        assert string_overlap("the the cat", "the the dog") == 2.0

    def test_custom_tokenizer(self):
        got = string_overlap("abcd", "bcde", tokenizer=lambda s: qgrams(s, 2))
        assert got == 2.0  # shares 'bc', 'cd'

    def test_weighted(self):
        w = TableWeights({"microsoft": 5.0}, default=1.0)
        assert string_overlap("microsoft corp", "microsoft inc", weights=w) == 5.0


class TestContainmentAndResemblance:
    def test_containment_asymmetric(self):
        a, b = "microsoft corp", "microsoft corp redmond wa"
        assert string_jaccard_containment(a, b) == 1.0
        assert string_jaccard_containment(b, a) == pytest.approx(0.5)

    def test_resemblance_symmetric(self):
        a, b = "x y", "y z"
        assert string_jaccard_resemblance(a, b) == string_jaccard_resemblance(b, a)
        assert string_jaccard_resemblance(a, b) == pytest.approx(1 / 3)

    def test_identical(self):
        assert string_jaccard_resemblance("a b c", "a b c") == 1.0

    def test_empty_strings(self):
        assert string_jaccard_resemblance("", "") == 1.0
        assert string_jaccard_containment("", "x") == 1.0  # vacuous containment
