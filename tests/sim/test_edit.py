"""Unit + property tests for edit distance / edit similarity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.edit import (
    edit_distance,
    edit_distance_within,
    edit_similarity,
    edit_similarity_at_least,
)

short_text = st.text(alphabet="abcd", max_size=12)


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("microsoft", "mcrosoft", 1),
            ("microsoft corp", "mcrosoft corp", 1),
            ("a", "b", 1),
        ],
    )
    def test_known_distances(self, a, b, d):
        assert edit_distance(a, b) == d

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(short_text)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0


class TestEditDistanceWithin:
    def test_within_returns_distance(self):
        assert edit_distance_within("kitten", "sitting", 3) == 3

    def test_exceeding_returns_none(self):
        assert edit_distance_within("kitten", "sitting", 2) is None

    def test_negative_budget(self):
        assert edit_distance_within("a", "a", -1) is None

    def test_length_gap_short_circuit(self):
        assert edit_distance_within("a", "abcdef", 2) is None

    def test_zero_budget_equal_strings(self):
        assert edit_distance_within("same", "same", 0) == 0

    def test_empty_vs_short(self):
        assert edit_distance_within("", "ab", 2) == 2
        assert edit_distance_within("", "ab", 1) is None

    @given(short_text, short_text, st.integers(min_value=0, max_value=6))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_full_dp(self, a, b, k):
        full = edit_distance(a, b)
        banded = edit_distance_within(a, b, k)
        if full <= k:
            assert banded == full
        else:
            assert banded is None


class TestEditSimilarity:
    def test_definition(self):
        # ES = 1 - ED/max(len): paper Definition 2.
        assert edit_similarity("microsoft", "mcrosoft") == pytest.approx(1 - 1 / 9)

    def test_identical(self):
        assert edit_similarity("x", "x") == 1.0

    def test_both_empty(self):
        assert edit_similarity("", "") == 1.0

    def test_disjoint(self):
        assert edit_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0


class TestThresholdedSimilarity:
    @given(short_text, short_text, st.sampled_from([0.5, 0.8, 0.9, 1.0]))
    @settings(max_examples=200, deadline=None)
    def test_matches_exact_computation(self, a, b, threshold):
        expected = edit_similarity(a, b) + 1e-12 >= threshold
        # The integer edit budget floors (1-t)*maxlen, which is exactly the
        # equivalence ES >= t <=> ED <= floor((1-t)*maxlen).
        assert edit_similarity_at_least(a, b, threshold) == expected

    def test_empty_strings_similar(self):
        assert edit_similarity_at_least("", "", 1.0)
