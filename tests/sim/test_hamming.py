"""Unit tests for hamming distances and the overlap reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sim.hamming import hamming_overlap_bound, set_hamming, string_hamming
from repro.tokenize.sets import WeightedSet


class TestStringHamming:
    def test_known(self):
        assert string_hamming("karolin", "kathrin") == 3

    def test_identical(self):
        assert string_hamming("abc", "abc") == 0

    def test_empty(self):
        assert string_hamming("", "") == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            string_hamming("ab", "abc")


class TestSetHamming:
    def test_symmetric_difference_weight(self):
        a = WeightedSet({"x": 1.0, "y": 2.0})
        b = WeightedSet({"y": 2.0, "z": 5.0})
        assert set_hamming(a, b) == pytest.approx(6.0)

    def test_identical_sets(self):
        a = WeightedSet({"x": 1.0})
        assert set_hamming(a, a) == 0.0

    def test_disjoint(self):
        a = WeightedSet({"x": 1.0})
        b = WeightedSet({"y": 1.0})
        assert set_hamming(a, b) == 2.0


@st.composite
def unit_sets(draw):
    els = draw(st.sets(st.sampled_from("abcdefgh"), max_size=8))
    return WeightedSet({e: 1.0 for e in els})


class TestOverlapReduction:
    @given(unit_sets(), unit_sets(), st.floats(min_value=0, max_value=10))
    @settings(max_examples=150, deadline=None)
    def test_reduction_equivalence(self, a, b, k):
        """HD <= k  <=>  Overlap >= (wt(a)+wt(b)-k)/2 (exact, both ways)."""
        hd_ok = set_hamming(a, b) <= k + 1e-9
        bound = hamming_overlap_bound(a.norm, b.norm, k)
        overlap_ok = a.overlap(b) + 1e-9 >= bound
        assert hd_ok == overlap_ok
