"""Unit tests for cosine similarity over token vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cosine import cosine_vectors, string_cosine
from repro.tokenize.weights import TableWeights

vectors = st.dictionaries(
    st.sampled_from("abcde"),
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    max_size=5,
)


class TestCosineVectors:
    def test_identical(self):
        assert cosine_vectors({"a": 2.0}, {"a": 2.0}) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_vectors({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_scale_invariant(self):
        u = {"a": 1.0, "b": 2.0}
        v = {"a": 10.0, "b": 20.0}
        assert cosine_vectors(u, v) == pytest.approx(1.0)

    def test_empty_conventions(self):
        assert cosine_vectors({}, {}) == 1.0
        assert cosine_vectors({}, {"a": 1.0}) == 0.0

    @given(vectors, vectors)
    @settings(max_examples=100, deadline=None)
    def test_symmetric_and_bounded(self, u, v):
        s = cosine_vectors(u, v)
        assert s == pytest.approx(cosine_vectors(v, u))
        assert -1e-9 <= s <= 1.0 + 1e-9


class TestStringCosine:
    def test_identical_strings(self):
        assert string_cosine("microsoft corp", "microsoft corp") == pytest.approx(1.0)

    def test_term_frequency_counts(self):
        # 'the the' vs 'the' point the same direction -> cosine 1.
        assert string_cosine("the the", "the") == pytest.approx(1.0)

    def test_weighted(self):
        w = TableWeights({"rare": 10.0}, default=1.0)
        weighted = string_cosine("rare common", "rare other", weights=w)
        unweighted = string_cosine("rare common", "rare other")
        assert weighted > unweighted
