"""Metamorphic properties of the similarity joins.

These invariants hold for *any* correct filter-and-verify join and catch
whole classes of bugs that example-based tests miss:

* **threshold monotonicity** — raising the threshold can only shrink the
  result;
* **context independence** — adding unrelated strings to the input never
  removes (or alters the scores of) existing pairs;
* **duplicate invariance** — repeating an input string changes nothing
  (joins operate on distinct values of A);
* **permutation invariance** — input order is irrelevant;
* **symmetry/asymmetry contracts** — symmetric functions report each
  unordered pair once, asymmetric ones report directions independently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.cosine_join import cosine_join
from repro.joins.edit_join import edit_similarity_join
from repro.joins.jaccard_join import jaccard_containment_join, jaccard_resemblance_join

# Small string pools that generate plenty of near-duplicates.
WORDS = ["main", "oak", "st", "ave", "seattle", "portland", "12", "99"]


@st.composite
def corpora(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    return [
        " ".join(draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=5)))
        for _ in range(n)
    ]


JOINS = {
    "jaccard": lambda values, t: jaccard_resemblance_join(values, threshold=t, weights=None),
    "containment": lambda values, t: jaccard_containment_join(values, threshold=t, weights=None),
    "cosine": lambda values, t: cosine_join(values, threshold=t, weights=None),
    "edit": lambda values, t: edit_similarity_join(values, threshold=t, q=2),
}


class TestThresholdMonotonicity:
    @pytest.mark.parametrize("name", ["jaccard", "containment", "cosine"])
    @given(corpus=corpora(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_higher_threshold_shrinks_result(self, name, corpus, data):
        lo = data.draw(st.sampled_from([0.3, 0.5, 0.6]))
        hi = data.draw(st.sampled_from([0.7, 0.85, 0.95]))
        loose = JOINS[name](corpus, lo).pair_set()
        tight = JOINS[name](corpus, hi).pair_set()
        assert tight <= loose

    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_edit_monotonicity(self, corpus):
        loose = JOINS["edit"](corpus, 0.7).pair_set()
        tight = JOINS["edit"](corpus, 0.9).pair_set()
        assert tight <= loose


class TestContextIndependence:
    @pytest.mark.parametrize("name", ["jaccard", "containment", "cosine", "edit"])
    @given(corpus=corpora(), extra=corpora())
    @settings(max_examples=60, deadline=None)
    def test_adding_strings_never_removes_pairs(self, name, corpus, extra):
        threshold = 0.7
        before = JOINS[name](corpus, threshold).pair_set()
        after = JOINS[name](corpus + extra, threshold).pair_set()
        # Unweighted joins: scores don't depend on corpus statistics, so
        # every original pair must survive.
        assert before <= after


class TestInputInvariances:
    @pytest.mark.parametrize("name", list(JOINS))
    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_duplicate_inputs_ignored(self, name, corpus):
        threshold = 0.6
        once = JOINS[name](corpus, threshold).pair_set()
        doubled = JOINS[name](corpus + corpus, threshold).pair_set()
        assert once == doubled

    @pytest.mark.parametrize("name", list(JOINS))
    @given(corpus=corpora(), seed=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, name, corpus, seed):
        import random

        threshold = 0.6
        shuffled = list(corpus)
        random.Random(seed).shuffle(shuffled)
        assert JOINS[name](corpus, threshold).pair_set() == JOINS[name](
            shuffled, threshold
        ).pair_set()


class TestSymmetryContracts:
    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_symmetric_joins_report_each_pair_once(self, corpus):
        res = jaccard_resemblance_join(corpus, threshold=0.5, weights=None)
        pairs = res.pair_set()
        for a, b in pairs:
            assert (b, a) not in pairs or a == b

    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_containment_directions_independent(self, corpus):
        """JC(a,b) >= t does not imply JC(b,a) >= t; both directions must be
        decided independently (per-direction oracle check)."""
        from repro.sim.jaccard import string_jaccard_containment
        from repro.tokenize.words import words as tokenize

        res = jaccard_containment_join(corpus, threshold=0.8, weights=None)
        pairs = res.pair_set()
        distinct = [v for v in dict.fromkeys(corpus) if tokenize(v)]
        for a in distinct:
            for b in distinct:
                if a == b:
                    continue
                expected = string_jaccard_containment(a, b) + 1e-9 >= 0.8
                assert ((a, b) in pairs) == expected

    @given(corpus=corpora())
    @settings(max_examples=30, deadline=None)
    def test_identity_pairs_never_reported(self, corpus):
        for name in JOINS:
            res = JOINS[name](corpus, 0.6)  # q=2 edit join needs t > 0.5
            assert all(p.left != p.right for p in res.pairs)


class TestScoreConsistency:
    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_reported_scores_meet_threshold(self, corpus):
        threshold = 0.6
        for name in JOINS:
            res = JOINS[name](corpus, threshold)
            for pair in res.pairs:
                assert pair.similarity + 1e-6 >= threshold

    @given(corpus=corpora())
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded(self, corpus):
        for name in JOINS:
            res = JOINS[name](corpus, 0.6)  # q=2 edit join needs t > 0.5
            for pair in res.pairs:
                assert 0.0 <= pair.similarity <= 1.0 + 1e-9
