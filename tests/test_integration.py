"""Cross-module integration tests: full pipelines at moderate scale.

These tie the layers together — data generation → preparation → operator →
join → verification — and check the invariants that hold *across* modules
(metrics consistency, implementation agreement, determinism end to end).
"""

import pytest

from repro import (
    OverlapPredicate,
    PreparedRelation,
    SSJoin,
    cosine_join,
    direct_join,
    edit_similarity_join,
    ges_join,
    jaccard_resemblance_join,
)
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.jaccard_join import resolve_weights
from repro.sim.edit import edit_similarity
from repro.sim.ges import ges
from repro.sim.jaccard import string_jaccard_resemblance
from repro.tokenize.words import words

IMPLEMENTATIONS = ("basic", "prefix", "inline", "probe")


@pytest.fixture(scope="module")
def addresses():
    return generate_addresses(CustomerConfig(num_rows=200, seed=77))


class TestAllImplementationsAgreeEndToEnd:
    @pytest.mark.parametrize("threshold", [0.8, 0.9])
    def test_edit_join_agreement(self, addresses, threshold):
        results = {
            impl: edit_similarity_join(addresses, threshold=threshold,
                                       implementation=impl).pair_set()
            for impl in IMPLEMENTATIONS
        }
        reference = results["basic"]
        assert all(r == reference for r in results.values())

    def test_jaccard_join_agreement_weighted(self, addresses):
        results = {
            impl: jaccard_resemblance_join(addresses, threshold=0.75,
                                           weights="idf",
                                           implementation=impl).pair_set()
            for impl in IMPLEMENTATIONS
        }
        reference = results["basic"]
        assert all(r == reference for r in results.values())


class TestOracleAgreementAtScale:
    def test_every_join_vs_oracle_on_one_corpus(self, addresses):
        subset = addresses[:100]
        cases = [
            (
                edit_similarity_join(subset, threshold=0.85),
                direct_join(subset, similarity=edit_similarity, threshold=0.85),
            ),
            (
                jaccard_resemblance_join(subset, threshold=0.7, weights=None),
                direct_join(subset, similarity=string_jaccard_resemblance,
                            threshold=0.7),
            ),
            (
                ges_join(subset, threshold=0.85, weights=None),
                direct_join(subset, similarity=ges, threshold=0.85, symmetric=False),
            ),
        ]
        for got, expected in cases:
            assert got.pair_set() == expected.pair_set()


class TestMetricsInvariants:
    @pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
    def test_counts_are_consistent(self, addresses, implementation):
        res = jaccard_resemblance_join(
            addresses, threshold=0.8, weights="idf", implementation=implementation
        )
        m = res.metrics
        assert m.output_pairs <= m.candidate_pairs or implementation == "basic"
        assert m.result_pairs <= m.output_pairs
        assert m.prepared_rows > 0
        assert m.total_seconds > 0
        # every phase present is non-negative
        assert all(s >= 0 for s in m.phase_seconds.values())

    def test_prefix_rows_never_exceed_prepared(self, addresses):
        res = jaccard_resemblance_join(
            addresses, threshold=0.9, weights="idf", implementation="prefix"
        )
        assert res.metrics.prefix_rows <= res.metrics.prepared_rows


class TestDeterminismEndToEnd:
    def test_same_seed_same_join_output(self):
        def run():
            rows = generate_addresses(CustomerConfig(num_rows=150, seed=123))
            return edit_similarity_join(rows, threshold=0.85).pair_set()

        assert run() == run()

    def test_operator_result_order_insensitive_to_impl(self, addresses):
        table = resolve_weights("idf", words, addresses, addresses)
        prepared = PreparedRelation.from_strings(
            addresses, words, weights=table, norm="weight"
        )
        pred = OverlapPredicate.two_sided(0.85)
        op = SSJoin(prepared, prepared, pred)
        sets = [op.execute(i).pair_set() for i in IMPLEMENTATIONS]
        assert all(s == sets[0] for s in sets)


class TestUnicodeAndEdgeInputs:
    def test_unicode_strings(self):
        values = ["café münchen straße", "cafe münchen straße", "東京 渋谷区", "東京 渋谷"]
        res = edit_similarity_join(values, threshold=0.7)
        oracle = direct_join(values, similarity=edit_similarity, threshold=0.7)
        assert res.pair_set() == oracle.pair_set()

    def test_empty_and_whitespace_strings(self):
        """Token-less strings never join (documented operator semantics);
        the oracle agrees once restricted to non-empty token sets."""
        values = ["", "   ", "real value", "real valu"]
        res = jaccard_resemblance_join(values, threshold=0.5, weights=None)
        oracle = direct_join(values, similarity=string_jaccard_resemblance,
                             threshold=0.5)
        tokenful = {
            pair for pair in oracle.pair_set()
            if words(pair[0]) and words(pair[1])
        }
        assert res.pair_set() == tokenful
        assert ("", "   ") not in res.pair_set()

    def test_single_string_input(self):
        assert len(edit_similarity_join(["only one"], threshold=0.8)) == 0

    def test_very_long_strings(self):
        long_a = "token " * 200 + "end"
        long_b = "token " * 200 + "end extra"
        res = jaccard_resemblance_join([long_a, long_b], threshold=0.9, weights=None)
        assert len(res) == 1
