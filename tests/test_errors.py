"""The exception hierarchy: structure and message quality."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.UnknownColumnError,
            errors.DuplicateColumnError,
            errors.UnknownTableError,
            errors.DuplicateTableError,
            errors.PlanError,
            errors.PredicateError,
            errors.TokenizationError,
            errors.WeightError,
            errors.OptimizerError,
            errors.BenchmarkConfigError,
            errors.DataGenerationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_column_errors_are_schema_errors(self):
        assert issubclass(errors.UnknownColumnError, errors.SchemaError)
        assert issubclass(errors.DuplicateColumnError, errors.SchemaError)

    def test_catch_all(self):
        """One except clause catches every library error."""
        from repro.relational.schema import Schema

        with pytest.raises(errors.ReproError):
            Schema(["a", "a"])


class TestMessages:
    def test_unknown_column_lists_available(self):
        e = errors.UnknownColumnError("zzz", ("a", "b"))
        assert "zzz" in str(e)
        assert "a, b" in str(e)
        assert e.column == "zzz"
        assert e.available == ("a", "b")

    def test_unknown_column_without_candidates(self):
        e = errors.UnknownColumnError("zzz")
        assert "available" not in str(e)

    def test_duplicate_column_carries_name(self):
        e = errors.DuplicateColumnError("x")
        assert e.column == "x"

    def test_table_errors_carry_name(self):
        assert errors.UnknownTableError("t").table == "t"
        assert errors.DuplicateTableError("t").table == "t"

    def test_sql_syntax_error_is_plan_error(self):
        from repro.relational.sql.lexer import SqlSyntaxError

        e = SqlSyntaxError("boom", 5, "SELECT !")
        assert isinstance(e, errors.PlanError)
        assert "offset 5" in str(e)
        assert e.position == 5
