"""The page file format: segments, checksums, buffer pool."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.pages import (
    KIND_F64,
    KIND_I64,
    KIND_META,
    KIND_OBJECT,
    PAGE_CAPACITY,
    PAGE_SIZE,
    BufferPool,
    PageFileReader,
    PageFileWriter,
)


def write_file(path, segments):
    with PageFileWriter(str(path)) as writer:
        for name, kind, data in segments:
            writer.add_segment(name, kind, data)


class TestRoundTrip:
    def test_segments_round_trip_bytes_exactly(self, tmp_path):
        path = tmp_path / "t.rpsf"
        segments = [
            ("meta", KIND_META, b'{"v": 1}'),
            ("obj", KIND_OBJECT, b"\x80\x04N."),
            ("ints", KIND_I64, bytes(range(64))),
            ("floats", KIND_F64, b"\x00" * 48),
            ("empty", KIND_OBJECT, b""),
        ]
        write_file(path, segments)
        with PageFileReader(str(path)) as reader:
            for name, kind, data in segments:
                assert reader.has(name)
                assert reader.info(name).kind == kind
                assert reader.segment(name) == data
            assert not reader.has("missing")
            with pytest.raises(StorageError):
                reader.info("missing")

    def test_multi_page_segment(self, tmp_path):
        path = tmp_path / "big.rpsf"
        blob = os.urandom(PAGE_CAPACITY * 3 + 17)
        write_file(path, [("big", KIND_OBJECT, blob)])
        with PageFileReader(str(path)) as reader:
            assert reader.info("big").num_pages >= 4
            assert reader.segment("big") == blob

    def test_segment_names_prefix_filter(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("a/x", KIND_META, b"1"), ("a/y", KIND_META, b"2"),
                          ("b/z", KIND_META, b"3")])
        with PageFileReader(str(path)) as reader:
            assert sorted(reader.segment_names("a/")) == ["a/x", "a/y"]
            assert len(reader.segment_names()) == 3

    def test_file_size_is_page_aligned(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("x", KIND_OBJECT, b"tiny")])
        assert os.path.getsize(path) % PAGE_SIZE == 0


class TestAtomicity:
    def test_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "t.rpsf"
        writer = PageFileWriter(str(path))
        writer.add_segment("x", KIND_OBJECT, b"partial")
        writer.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_context_aborts(self, tmp_path):
        path = tmp_path / "t.rpsf"
        with pytest.raises(RuntimeError):
            with PageFileWriter(str(path)) as writer:
                writer.add_segment("x", KIND_OBJECT, b"partial")
                raise RuntimeError("boom")
        assert not path.exists()

    def test_replace_is_atomic_over_existing(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("x", KIND_OBJECT, b"old")])
        write_file(path, [("x", KIND_OBJECT, b"new")])
        with PageFileReader(str(path)) as reader:
            assert reader.segment("x") == b"new"


class TestChecksums:
    @pytest.mark.parametrize("corrupt_page", [1, 2])
    def test_flipped_byte_is_rejected(self, tmp_path, corrupt_page):
        path = tmp_path / "t.rpsf"
        blob = os.urandom(PAGE_CAPACITY + 100)  # spans pages 1 and 2
        write_file(path, [("big", KIND_OBJECT, blob)])
        raw = bytearray(path.read_bytes())
        # Flip one payload byte inside the target page, past its header.
        offset = corrupt_page * PAGE_SIZE + 64
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with PageFileReader(str(path)) as reader:
            with pytest.raises(StorageError):
                reader.segment("big")

    def test_truncated_file_is_rejected(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("x", KIND_OBJECT, os.urandom(PAGE_CAPACITY * 2))])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - PAGE_SIZE])
        with pytest.raises(StorageError):
            with PageFileReader(str(path)) as reader:
                reader.segment("x")

    def test_garbage_header_is_rejected(self, tmp_path):
        path = tmp_path / "t.rpsf"
        path.write_bytes(b"not a page file" + b"\x00" * PAGE_SIZE)
        with pytest.raises(StorageError):
            PageFileReader(str(path))


class TestBufferPool:
    def test_hits_and_misses(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("x", KIND_OBJECT, b"payload")])
        pool = BufferPool(capacity_pages=8)
        with PageFileReader(str(path), pool=pool) as reader:
            reader.segment("x")
            misses_after_first = pool.stats()["misses"]
            reader.segment("x")
        stats = pool.stats()
        assert misses_after_first > 0
        assert stats["misses"] == misses_after_first  # second read all hits
        assert stats["hits"] > 0

    def test_lru_eviction_is_bounded_and_counted(self, tmp_path):
        path = tmp_path / "t.rpsf"
        segments = [
            (f"s{i}", KIND_OBJECT, os.urandom(PAGE_CAPACITY))
            for i in range(8)
        ]
        write_file(path, segments)
        pool = BufferPool(capacity_pages=2)
        with PageFileReader(str(path), pool=pool) as reader:
            for name, _, data in segments:
                assert reader.segment(name) == data
        stats = pool.stats()
        assert len(pool) <= 2
        assert stats["evictions"] > 0

    def test_pinned_pages_survive_eviction_pressure(self, tmp_path):
        path = tmp_path / "t.rpsf"
        segments = [
            (f"s{i}", KIND_OBJECT, os.urandom(PAGE_CAPACITY))
            for i in range(6)
        ]
        write_file(path, segments)
        pool = BufferPool(capacity_pages=2)
        with PageFileReader(str(path), pool=pool) as reader:
            first_page = reader.info("s0").first_page
            reader.segment("s0")
            pool.pin(reader.file_key, first_page)
            for name, _, _ in segments[1:]:
                reader.segment(name)
            # The pinned page must still be resident: re-reading s0 is a
            # pure hit even though capacity forced every unpinned page out.
            hits_before = pool.stats()["hits"]
            reader.segment("s0")
            assert pool.stats()["hits"] > hits_before
            pool.unpin(reader.file_key, first_page)

    def test_invalidate_drops_file_entries(self, tmp_path):
        path = tmp_path / "t.rpsf"
        write_file(path, [("x", KIND_OBJECT, b"payload")])
        pool = BufferPool(capacity_pages=8)
        with PageFileReader(str(path), pool=pool) as reader:
            reader.segment("x")
            assert len(pool) > 0
            pool.invalidate(reader.file_key)
            assert len(pool) == 0
            assert reader.segment("x") == b"payload"
