"""Codec round-trips: dictionary, prepared relation, encoding, stamps.

Property-based where the input space matters (empty relations,
single-token groups, columns spilling past one page), example-based for
the generation-stamp semantics (SSJ114).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dictionary import TokenDictionary
from repro.core.encoded import EncodedPreparedRelation
from repro.core.prepared import PreparedRelation
from repro.errors import StaleArtifactError, StorageError
from repro.storage import codecs
from repro.storage.pages import PAGE_SIZE, PageFileReader, PageFileWriter

TOKENS = ["main", "oak", "st", "ave", "elm", "blvd", "seattle", "12", "99b"]


def tokenize(s):
    return s.split()


@st.composite
def corpora(draw):
    """String corpora spanning the edge shapes: possibly empty, possibly
    single-token groups, possibly duplicated values."""
    n = draw(st.integers(min_value=0, max_value=12))
    return [
        " ".join(draw(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=6)))
        for _ in range(n)
    ]


def prepared_of(values, name="R"):
    return PreparedRelation.from_strings(values, tokenize, name=name)


def roundtrip_prepared(tmp_path, prepared, chunk_rows=codecs.CHUNK_ROWS):
    path = str(tmp_path / "t.rpsf")
    with PageFileWriter(path) as writer:
        layout = codecs.write_prepared(writer, prepared, chunk_rows=chunk_rows)
    reader = PageFileReader(path)
    return reader, layout


class TestPreparedRoundTrip:
    @given(values=corpora())
    @settings(max_examples=50, deadline=None)
    def test_groups_norms_survive(self, tmp_path_factory, values):
        tmp_path = tmp_path_factory.mktemp("codec")
        prepared = prepared_of(values)
        reader, layout = roundtrip_prepared(tmp_path, prepared)
        try:
            decoded = codecs.read_prepared(reader, "R")
            assert decoded.groups == prepared.groups
            assert decoded.norms == prepared.norms
            assert layout["num_groups"] == len(prepared.groups)
        finally:
            reader.close()

    def test_empty_relation(self, tmp_path):
        prepared = prepared_of([])
        reader, layout = roundtrip_prepared(tmp_path, prepared)
        try:
            decoded = codecs.read_prepared(reader, "R")
            assert decoded.groups == {}
            assert layout == {
                "num_rows": 0, "num_groups": 0,
                "chunk_rows": codecs.CHUNK_ROWS, "n_chunks": 0,
                "columns": ["a", "b", "w", "norm"],
            }
        finally:
            reader.close()

    def test_single_token_groups(self, tmp_path):
        prepared = prepared_of(["oak", "elm", "oak"])
        reader, _ = roundtrip_prepared(tmp_path, prepared)
        try:
            decoded = codecs.read_prepared(reader, "R")
            assert decoded.groups == prepared.groups
        finally:
            reader.close()

    def test_multi_chunk_columns_match_fnf_rows(self, tmp_path):
        # Tiny chunk_rows forces many chunks; enough distinct rows that
        # the weight column alone also spills past one 4 KiB page.
        values = [f"prefix token{i} t{i % 7}" for i in range(PAGE_SIZE // 4)]
        prepared = prepared_of(values)
        reader, layout = roundtrip_prepared(tmp_path, prepared, chunk_rows=64)
        try:
            assert layout["n_chunks"] > 1
            assert reader.info("groups/weights").num_pages > 1
            rows = []
            for c in range(layout["n_chunks"]):
                chunk_cols = [
                    codecs.read_row_chunk(reader, col, c)
                    for col in layout["columns"]
                ]
                rows.extend(zip(*chunk_cols))
            assert rows == list(prepared.relation.rows)
        finally:
            reader.close()


class TestDictionaryRoundTrip:
    @given(values=corpora())
    @settings(max_examples=30, deadline=None)
    def test_ids_and_generation_survive(self, tmp_path_factory, values):
        tmp_path = tmp_path_factory.mktemp("codec")
        prepared = prepared_of(values)
        dictionary = TokenDictionary.from_relations(prepared, prepared)
        path = str(tmp_path / "d.rpsf")
        with PageFileWriter(path) as writer:
            generation = codecs.write_dictionary(writer, dictionary)
        with PageFileReader(path) as reader:
            decoded, decoded_gen = codecs.read_dictionary(reader)
        assert decoded_gen == generation
        assert len(decoded) == len(dictionary)
        for i in range(len(dictionary)):
            assert decoded.element_of(i) == dictionary.element_of(i)


class TestEncodedRoundTrip:
    @given(values=corpora())
    @settings(max_examples=30, deadline=None)
    def test_columnar_arrays_identical(self, tmp_path_factory, values):
        tmp_path = tmp_path_factory.mktemp("codec")
        prepared = prepared_of(values)
        dictionary = TokenDictionary.from_relations(prepared, prepared)
        encoded = EncodedPreparedRelation(prepared, dictionary)
        path = str(tmp_path / "e.rpsf")
        with PageFileWriter(path) as writer:
            generation = codecs.write_dictionary(writer, dictionary)
            codecs.write_encoded(writer, encoded, generation)
        with PageFileReader(path) as reader:
            decoded = codecs.read_encoded(
                reader, prepared, dictionary, generation
            )
        assert list(decoded.keys) == list(encoded.keys)
        assert [list(g) for g in decoded.ids] == [list(g) for g in encoded.ids]
        assert [list(g) for g in decoded.weights] == [
            list(g) for g in encoded.weights
        ]
        assert list(decoded.norms) == list(encoded.norms)
        assert list(decoded.set_norms) == list(encoded.set_norms)
        assert decoded.storage_ref == path


class TestGenerationStamps:
    def test_stale_encoding_raises(self, tmp_path):
        from repro.storage.fixtures import seed_stale_table

        path = str(tmp_path / "stale.rpsf")
        real_generation = seed_stale_table(path)
        with PageFileReader(path) as reader:
            prepared = prepared_of(["stale stamp fixture",
                                    "seeded defect corpus"])
            dictionary, generation = codecs.read_dictionary(reader)
            assert generation == real_generation
            with pytest.raises(StaleArtifactError):
                codecs.read_encoded(reader, prepared, dictionary, generation)

    def test_tampered_dictionary_cannot_masquerade(self, tmp_path):
        # A dictionary whose stamp doesn't match its re-derived content
        # digest is rejected even though every page checksum is valid.
        prepared = prepared_of(["oak elm", "elm st"])
        dictionary = TokenDictionary.from_relations(prepared, prepared)
        elements = [dictionary.element_of(i) for i in range(len(dictionary))]
        path = str(tmp_path / "t.rpsf")
        with PageFileWriter(path) as writer:
            writer.add_segment(
                "dict/elements", 1, codecs._dumps(elements)
            )
            writer.add_segment(
                "dict/meta", 0,
                codecs._dumps({"description": dictionary.description,
                               "generation": "f" * 64,
                               "size": len(elements)}),
            )
        with PageFileReader(path) as reader:
            with pytest.raises(StaleArtifactError):
                codecs.read_dictionary(reader)

    def test_stable_fingerprint_is_content_keyed(self):
        a = prepared_of(["oak elm", "elm st"])
        b = prepared_of(["oak elm", "elm st"])
        c = prepared_of(["oak elm", "elm ave"])
        assert codecs.stable_fingerprint(a) == codecs.stable_fingerprint(b)
        assert codecs.stable_fingerprint(a) != codecs.stable_fingerprint(c)

    def test_corrupted_page_surfaces_as_storage_error(self, tmp_path):
        prepared = prepared_of(["oak elm", "elm st"])
        path = str(tmp_path / "t.rpsf")
        with PageFileWriter(path) as writer:
            codecs.write_prepared(writer, prepared)
        raw = bytearray((tmp_path / "t.rpsf").read_bytes())
        raw[PAGE_SIZE + 24] ^= 0xFF  # first data page, just past its header
        (tmp_path / "t.rpsf").write_bytes(bytes(raw))
        with PageFileReader(path) as reader:
            with pytest.raises(StorageError):
                codecs.read_prepared(reader, "R")
