"""StoredTable end-to-end: ingest, attach, stream, join, cache tiers.

The contract under test is *bit-identity*: a disk-backed execution —
attached catalog table, persisted encoding, slim worker payloads — must
produce exactly the rows the in-memory execution produces, at every
worker count.
"""

import os
import pickle

import pytest

from repro.core.encoded import EncodingCache, encoding_tier
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostModel
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.joins.jaccard_join import resolve_weights
from repro.storage import (
    EncodingStore,
    ingest_prepared,
    load_encoded_ref,
    open_table,
)
from repro.tokenize.words import words

VALUES = [
    "100 main st seattle",
    "100 main street seattle",
    "22 oak ave portland",
    "22 oak avenue portland",
    "9 elm blvd",
    "742 evergreen terrace",
    "742 evergreen terr",
]


def fig12_prepared(values=VALUES, name="R"):
    table = resolve_weights("idf", words, values, values)
    return PreparedRelation.from_strings(
        values, words, weights=table, norm=NORM_WEIGHT, name=name
    )


@pytest.fixture()
def ingested(tmp_path):
    path = str(tmp_path / "r.rpsf")
    table = ingest_prepared(fig12_prepared(), path)
    yield table
    table.close()


class TestIngestAndReopen:
    def test_prepared_round_trips(self, ingested):
        fresh = fig12_prepared()
        reopened = open_table(ingested.path)
        try:
            assert reopened.prepared().groups == fresh.groups
            assert reopened.prepared().norms == fresh.norms
            assert list(reopened.relation.rows) == list(fresh.relation.rows)
        finally:
            reopened.close()

    def test_batches_stream_page_chunks(self, ingested):
        rows = []
        for batch in ingested.relation.iter_stored_batches(4):
            assert len(batch) <= 4
            rows.extend(batch.to_rows())
        assert rows == list(fig12_prepared().relation.rows)

    def test_projection_pushdown_names(self, ingested):
        cols = []
        for batch in ingested.relation.iter_stored_batches(64, names=["a", "w"]):
            assert batch.schema.names == ("a", "w")
            cols.extend(batch.to_rows())
        full = list(fig12_prepared().relation.rows)
        assert cols == [(a, w) for a, b, w, n in full]

    def test_stored_relation_pickles_by_reference(self, ingested):
        clone = pickle.loads(pickle.dumps(ingested.relation))
        assert list(clone.rows) == list(ingested.relation.rows)

    def test_stats_shape(self, ingested):
        stats = ingested.stats()
        assert stats["num_groups"] == len(VALUES)
        assert stats["num_pages"] > 0
        assert len(stats["generation"]) == 12


class TestCatalogAttach:
    def test_sql_over_attached_table(self, ingested):
        from repro.relational.catalog import Catalog
        from repro.relational.sql import execute_sql

        catalog = Catalog()
        catalog.attach("r", ingested.path)
        result = execute_sql(catalog, "SELECT COUNT(*) AS n FROM r")
        assert list(result.rows) == [(ingested.num_rows,)]

    def test_attached_ssjoin_matches_memory(self, ingested):
        from repro.relational.catalog import Catalog
        from repro.relational.sql import execute_sql

        query = (
            "SELECT a_r, a_s, overlap FROM r x SSJOIN r y "
            "ON OVERLAP(b) >= 0.6 * x.norm AND OVERLAP(b) >= 0.6 * y.norm "
            "WHERE a_r < a_s ORDER BY a_r, a_s"
        )
        attached = Catalog()
        attached.attach("r", ingested.path)
        memory = Catalog()
        memory.register("r", fig12_prepared().relation.renamed("r"))
        assert (
            execute_sql(attached, query).rows == execute_sql(memory, query).rows
        )


class TestBitIdenticalExecution:
    @pytest.mark.parametrize("workers", [None, 1, 2, 4])
    def test_disk_backed_join_matches_memory(self, ingested, workers,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "serial")
        predicate = OverlapPredicate.two_sided(0.6)
        baseline = SSJoin(
            fig12_prepared(), fig12_prepared(), predicate
        ).execute("encoded-prefix", encoding_cache=EncodingCache())

        cache = EncodingCache()
        ingested.seed_cache(cache)
        prepared = ingested.prepared()
        result = SSJoin(prepared, prepared, predicate).execute(
            "encoded-prefix", workers=workers, encoding_cache=cache
        )
        # Parallel runs canonically sort their merged rows; the sequential
        # baseline is in enumeration order. Content must match exactly.
        assert sorted(map(repr, result.pairs.rows)) == sorted(
            map(repr, baseline.pairs.rows)
        )

    def test_warm_start_pays_zero_encodes(self, ingested):
        cache = EncodingCache()
        ingested.seed_cache(cache)
        prepared = ingested.prepared()
        m = ExecutionMetrics()
        SSJoin(prepared, prepared, OverlapPredicate.two_sided(0.6)).execute(
            "encoded-prefix", metrics=m, encoding_cache=cache
        )
        stats = m.extra["encoding_cache"]
        assert stats["hits"] >= 1
        assert stats["misses"] == 0


class TestEncodingCacheTiers:
    def test_lru_cap_and_eviction_counter(self):
        cache = EncodingCache(capacity=1)
        a, b = fig12_prepared(VALUES[:3], "A"), fig12_prepared(VALUES[3:], "B")
        cache.encode_pair(a, a)
        cache.encode_pair(b, b)  # evicts (a, a)
        cache.encode_pair(a, a)  # rebuild, not a hit
        assert cache.evictions >= 1
        assert cache.hits == 0
        assert cache.misses == 3
        assert cache.stats()["capacity"] == 1

    def test_persistent_tier_round_trip(self, tmp_path):
        store = EncodingStore(str(tmp_path / "enc"))
        warmer = EncodingCache()
        warmer.attach_persistent(store, auto_persist=True)
        prepared = fig12_prepared()
        enc_left, _, _ = warmer.encode_pair(prepared, prepared)
        assert store.files()

        fresh = EncodingCache()
        fresh.attach_persistent(store)
        loaded_left, _, _ = fresh.encode_pair(fig12_prepared(), fig12_prepared())
        assert fresh.disk_hits == 1
        assert [list(g) for g in loaded_left.ids] == [
            list(g) for g in enc_left.ids
        ]
        # Promotion: the decoded encoding now lives in the memory tier.
        fresh.encode_pair(fig12_prepared(), fig12_prepared())
        assert fresh.hits == 1

    def test_encoding_tier_reports_memory_then_disk(self, tmp_path):
        store = EncodingStore(str(tmp_path / "enc"))
        cache = EncodingCache()
        cache.attach_persistent(store, auto_persist=True)
        prepared = fig12_prepared()
        assert encoding_tier(prepared, prepared, None, cache=cache) is None
        cache.encode_pair(prepared, prepared)
        assert encoding_tier(prepared, prepared, None, cache=cache) == "memory"
        cold = EncodingCache()
        cold.attach_persistent(store)
        assert encoding_tier(
            fig12_prepared(), fig12_prepared(), None, cache=cold
        ) == "disk"

    def test_load_encoded_ref_matches_original(self, ingested):
        original = ingested.encoded()
        loaded = load_encoded_ref(original.storage_ref)
        assert [list(g) for g in loaded.ids] == [
            list(g) for g in original.ids
        ]
        assert list(loaded.keys) == list(original.keys)


class TestCostModelTiers:
    def test_disk_tier_charges_page_io_not_reencode(self, tmp_path):
        from repro.core.encoded import global_encoding_cache

        # Large enough that re-encoding costs more than the page reads
        # that replace it (PAGE_IO amortizes past ~70 elements).
        values = [f"{i} main st unit{i % 3} city{i % 7}" for i in range(60)]
        prepared = fig12_prepared(values)
        predicate = OverlapPredicate.two_sided(0.6)
        model = CostModel()

        def encoded_prefix_cost():
            estimates = model.estimate_all(prepared, prepared, predicate)
            return next(
                e.cost for e in estimates
                if e.implementation == "encoded-prefix"
            )

        cache = global_encoding_cache()
        saved = (cache.persistent, cache.auto_persist)
        cache.clear()
        try:
            rebuild = encoded_prefix_cost()
            cache.attach_persistent(
                EncodingStore(str(tmp_path / "enc")), auto_persist=True
            )
            cache.encode_pair(prepared, prepared)
            warm = encoded_prefix_cost()  # memory tier: encode cost 0
            cache.clear()
            disk = encoded_prefix_cost()  # disk tier: page I/O only
            assert warm < disk < rebuild
        finally:
            cache.clear()
            cache.persistent, cache.auto_persist = saved


class TestStaleArtifacts:
    def test_verify_storage_clean_and_seeded(self, ingested, tmp_path):
        from repro.analysis.invariants import verify_storage
        from repro.storage.fixtures import seed_stale_table

        assert verify_storage(ingested.path).ok
        stale = str(tmp_path / "stale.rpsf")
        seed_stale_table(stale)
        report = verify_storage(stale)
        assert not report.ok
        assert {d.rule for d in report.errors()} == {"SSJ114"}

    def test_missing_file_is_a_finding_not_a_crash(self, tmp_path):
        from repro.analysis.invariants import verify_storage

        report = verify_storage(str(tmp_path / "nope.rpsf"))
        assert not report.ok


class TestParallelPayload:
    def test_process_backend_ships_stored_refs(self, ingested, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        cache = EncodingCache()
        ingested.seed_cache(cache)
        prepared = ingested.prepared()
        m = ExecutionMetrics()
        baseline = SSJoin(
            fig12_prepared(), fig12_prepared(), OverlapPredicate.two_sided(0.6)
        ).execute("encoded-prefix", encoding_cache=EncodingCache())
        result = SSJoin(
            prepared, prepared, OverlapPredicate.two_sided(0.6)
        ).execute(
            "encoded-prefix", metrics=m, workers=2, encoding_cache=cache
        )
        assert m.extra.get("parallel_payload") == "stored-ref"
        assert sorted(map(repr, result.pairs.rows)) == sorted(
            map(repr, baseline.pairs.rows)
        )
