"""Unit + property tests for q-gram tokenization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizationError
from repro.tokenize.qgrams import num_qgrams, padded_qgrams, positional_qgrams, qgrams

text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=30)


class TestQgrams:
    def test_basic(self):
        assert qgrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_shorter_than_q(self):
        assert qgrams("ab", 3) == []

    def test_exact_length(self):
        assert qgrams("abc", 3) == ["abc"]

    def test_lowercases_by_default(self):
        assert qgrams("AB", 1) == ["a", "b"]

    def test_preserves_case_on_request(self):
        assert qgrams("AB", 1, lowercase=False) == ["A", "B"]

    def test_duplicates_preserved(self):
        assert qgrams("aaa", 2) == ["aa", "aa"]

    def test_invalid_q(self):
        with pytest.raises(TokenizationError):
            qgrams("abc", 0)

    @given(text, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_count_formula(self, s, q):
        assert len(qgrams(s, q)) == num_qgrams(len(s), q)

    @given(text, st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_each_gram_has_length_q(self, s, q):
        assert all(len(g) == q for g in qgrams(s, q))


class TestPaddedQgrams:
    def test_count(self):
        # L + q - 1 grams
        assert len(padded_qgrams("ab", 2)) == 3

    def test_first_gram_ends_with_first_char(self):
        grams = padded_qgrams("xyz", 3, lowercase=False)
        assert grams[0].endswith("x")
        assert grams[-1].startswith("z")

    def test_empty_string(self):
        # padding alone yields q-1 grams over sentinels for q >= 2
        assert len(padded_qgrams("", 3)) == 2

    @given(text.filter(lambda s: len(s) >= 1), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_count_formula(self, s, q):
        assert len(padded_qgrams(s, q)) == len(s) + q - 1


class TestPositionalQgrams:
    def test_positions(self):
        assert positional_qgrams("abcd", 2) == [(0, "ab"), (1, "bc"), (2, "cd")]

    def test_empty(self):
        assert positional_qgrams("a", 3) == []


class TestNumQgrams:
    def test_never_negative(self):
        assert num_qgrams(0, 3) == 0
        assert num_qgrams(2, 3) == 0
        assert num_qgrams(5, 3) == 3

    def test_invalid_q(self):
        with pytest.raises(TokenizationError):
            num_qgrams(5, 0)
