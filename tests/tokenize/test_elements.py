"""Unit + property tests for the multiset ordinal encoding (paper 4.3.1)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenize.elements import ordinal_decode, ordinal_encode

tokens = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=20)


class TestOrdinalEncode:
    def test_paper_example(self):
        # {1, 1, 2} -> {<1,1>, <1,2>, <2,1>}
        assert ordinal_encode([1, 1, 2]) == [(1, 1), (1, 2), (2, 1)]

    def test_empty(self):
        assert ordinal_encode([]) == []

    def test_all_distinct(self):
        assert ordinal_encode(["x", "y"]) == [("x", 1), ("y", 1)]

    def test_encoding_is_a_set(self):
        encoded = ordinal_encode(["a"] * 5 + ["b"] * 3)
        assert len(set(encoded)) == len(encoded)

    @given(tokens)
    @settings(max_examples=100, deadline=None)
    def test_encoded_elements_always_distinct(self, toks):
        encoded = ordinal_encode(toks)
        assert len(set(encoded)) == len(encoded)

    @given(tokens)
    @settings(max_examples=100, deadline=None)
    def test_order_invariance_as_multiset(self, toks):
        """Two orderings of the same multiset encode to the same SET."""
        assert set(ordinal_encode(toks)) == set(ordinal_encode(sorted(toks)))

    @given(tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_set_intersection_equals_multiset_intersection(self, t1, t2):
        """The whole point of the encoding (Section 4.3.1)."""
        e1, e2 = set(ordinal_encode(t1)), set(ordinal_encode(t2))
        c1, c2 = Counter(t1), Counter(t2)
        multiset_overlap = sum(min(c1[t], c2[t]) for t in c1)
        assert len(e1 & e2) == multiset_overlap


class TestOrdinalDecode:
    def test_roundtrip_simple(self):
        assert ordinal_decode([("a", 1), ("a", 2), ("b", 1)]) == ["a", "a", "b"]

    def test_empty(self):
        assert ordinal_decode([]) == []

    @given(tokens)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_preserves_multiset(self, toks):
        assert Counter(ordinal_decode(ordinal_encode(toks))) == Counter(toks)
