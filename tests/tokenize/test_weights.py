"""Unit tests for weight tables (incl. the paper's exact IDF formula)."""

import math

import pytest

from repro.errors import WeightError
from repro.tokenize.weights import (
    IDFWeights,
    TableWeights,
    UnitWeights,
    build_weighted_set,
)


class TestUnitWeights:
    def test_always_one(self):
        u = UnitWeights()
        assert u.weight("anything") == 1.0
        assert u.element_weight(("tok", 3)) == 1.0


class TestIDFWeights:
    def test_paper_formula(self):
        """w(t) = log((|R|+|S|)/f_t) with f_t = documents containing t."""
        r_docs = [["the", "cat"], ["the", "dog"]]
        s_docs = [["the", "fox"], ["lonely"]]
        idf = IDFWeights.fit_two(r_docs, s_docs)
        assert idf.num_documents == 4
        assert idf.weight("the") == pytest.approx(math.log(4 / 3))
        assert idf.weight("cat") == pytest.approx(math.log(4 / 1))

    def test_token_repeated_in_doc_counts_once(self):
        idf = IDFWeights.fit([["a", "a", "b"]])
        assert idf.document_frequency["a"] == 1

    def test_unseen_token_gets_max_weight(self):
        idf = IDFWeights.fit([["a"], ["a"]])
        assert idf.weight("zzz") == pytest.approx(math.log(2.0))

    def test_ubiquitous_token_floored_positive(self):
        idf = IDFWeights.fit([["a"], ["a"]])
        assert idf.weight("a") == IDFWeights.MIN_WEIGHT
        assert idf.weight("a") > 0

    def test_ordinal_element_weight_uses_token(self):
        idf = IDFWeights.fit([["a"], ["b"]])
        assert idf.element_weight(("a", 2)) == idf.weight("a")

    def test_rejects_non_positive_documents(self):
        with pytest.raises(WeightError):
            IDFWeights(0, {})

    def test_rarer_token_weighs_more(self):
        idf = IDFWeights.fit([["common", "rare"], ["common"], ["common"]])
        assert idf.weight("rare") > idf.weight("common")


class TestTableWeights:
    def test_lookup_and_default(self):
        t = TableWeights({"a": 3.0}, default=0.5)
        assert t.weight("a") == 3.0
        assert t.weight("z") == 0.5

    def test_rejects_bad_weights(self):
        with pytest.raises(WeightError):
            TableWeights({"a": 0.0})
        with pytest.raises(WeightError):
            TableWeights({}, default=-1.0)


class TestBuildWeightedSet:
    def test_multiset_encodes_duplicates(self):
        s = build_weighted_set(["a", "a", "b"])
        assert ("a", 1) in s and ("a", 2) in s and ("b", 1) in s
        assert s.norm == 3.0

    def test_set_semantics_collapses(self):
        s = build_weighted_set(["a", "a", "b"], multiset=False)
        assert len(s) == 2

    def test_weights_applied(self):
        t = TableWeights({"a": 2.0})
        s = build_weighted_set(["a", "a"], weights=t)
        assert s.norm == pytest.approx(4.0)

    def test_empty_tokens(self):
        assert build_weighted_set([]).norm == 0.0
