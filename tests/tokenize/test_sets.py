"""Unit + property tests for WeightedSet and its similarity identities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WeightError
from repro.tokenize.sets import WeightedSet


# A single global weight table: Section 2's model fixes one weight per
# element of the universe, so both sets of a pair must agree on weights.
_UNIVERSE_WEIGHTS = {
    "a": 0.3, "b": 1.0, "c": 2.5, "d": 0.7, "e": 4.0, "f": 1.1, "g": 0.2, "h": 3.3,
}


@st.composite
def weighted_sets(draw):
    elements = draw(st.sets(st.sampled_from("abcdefgh"), max_size=8))
    return WeightedSet({e: _UNIVERSE_WEIGHTS[e] for e in elements})


class TestConstruction:
    def test_basic(self):
        s = WeightedSet({"x": 1.0, "y": 2.0})
        assert len(s) == 2
        assert s.norm == pytest.approx(3.0)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(WeightError):
            WeightedSet({"x": 0.0})
        with pytest.raises(WeightError):
            WeightedSet({"x": -1.0})

    def test_from_elements_unit_weights(self):
        s = WeightedSet.from_elements(["a", "b"])
        assert s.norm == 2.0

    def test_from_elements_weight_fn(self):
        s = WeightedSet.from_elements(["a", "bb"], weight_fn=len)
        assert s.weight("bb") == 2.0

    def test_from_elements_rejects_duplicates(self):
        with pytest.raises(WeightError):
            WeightedSet.from_elements(["a", "a"])

    def test_empty(self):
        assert WeightedSet.empty().norm == 0.0


class TestProtocol:
    def test_contains_iter(self):
        s = WeightedSet({"x": 1.0})
        assert "x" in s
        assert list(s) == ["x"]

    def test_equality_and_hash(self):
        a = WeightedSet({"x": 1.0, "y": 2.0})
        b = WeightedSet({"y": 2.0, "x": 1.0})
        assert a == b
        assert hash(a) == hash(b)

    def test_weight_absent_is_zero(self):
        assert WeightedSet({"x": 1.0}).weight("z") == 0.0

    def test_repr_truncates(self):
        s = WeightedSet({c: 1.0 for c in "abcdefg"})
        assert "…" in repr(s)


class TestAlgebra:
    def test_overlap(self):
        a = WeightedSet({"x": 1.0, "y": 2.0})
        b = WeightedSet({"y": 2.0, "z": 5.0})
        assert a.overlap(b) == pytest.approx(2.0)

    def test_intersection_union_difference(self):
        a = WeightedSet({"x": 1.0, "y": 2.0})
        b = WeightedSet({"y": 2.0, "z": 5.0})
        assert a.intersection(b) == WeightedSet({"y": 2.0})
        assert a.union(b).norm == pytest.approx(8.0)
        assert a.difference(b) == WeightedSet({"x": 1.0})

    def test_union_conflicting_weights_rejected(self):
        a = WeightedSet({"x": 1.0})
        b = WeightedSet({"x": 2.0})
        with pytest.raises(WeightError):
            a.union(b)

    def test_restrict(self):
        a = WeightedSet({"x": 1.0, "y": 2.0})
        assert a.restrict(["y", "zzz"]) == WeightedSet({"y": 2.0})

    def test_sorted_elements(self):
        a = WeightedSet({"b": 1.0, "a": 1.0, "c": 1.0})
        assert a.sorted_elements(lambda e: e) == ["a", "b", "c"]


class TestSimilarities:
    def test_containment_definition(self):
        a = WeightedSet({"x": 1.0, "y": 3.0})
        b = WeightedSet({"y": 3.0})
        assert a.jaccard_containment(b) == pytest.approx(0.75)
        assert b.jaccard_containment(a) == pytest.approx(1.0)

    def test_resemblance_definition(self):
        a = WeightedSet({"x": 1.0, "y": 1.0})
        b = WeightedSet({"y": 1.0, "z": 2.0})
        assert a.jaccard_resemblance(b) == pytest.approx(1.0 / 4.0)

    def test_empty_conventions(self):
        e = WeightedSet.empty()
        assert e.jaccard_resemblance(e) == 1.0
        assert e.jaccard_containment(WeightedSet({"x": 1.0})) == 1.0  # vacuous
        assert e.dice(e) == 1.0


class TestProperties:
    @given(weighted_sets(), weighted_sets())
    @settings(max_examples=100, deadline=None)
    def test_overlap_symmetric(self, a, b):
        assert a.overlap(b) == pytest.approx(b.overlap(a))

    @given(weighted_sets(), weighted_sets())
    @settings(max_examples=100, deadline=None)
    def test_overlap_bounded_by_min_norm(self, a, b):
        assert a.overlap(b) <= min(a.norm, b.norm) + 1e-9

    @given(weighted_sets(), weighted_sets())
    @settings(max_examples=100, deadline=None)
    def test_containment_at_least_resemblance(self, a, b):
        """JC(s1,s2) >= JR(s1,s2) — the inequality Section 3.2 relies on."""
        assert a.jaccard_containment(b) + 1e-9 >= a.jaccard_resemblance(b)

    @given(weighted_sets(), weighted_sets())
    @settings(max_examples=100, deadline=None)
    def test_union_norm_inclusion_exclusion(self, a, b):
        assert a.union_norm(b) == pytest.approx(a.norm + b.norm - a.overlap(b))

    @given(weighted_sets())
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, a):
        if len(a):
            assert a.jaccard_resemblance(a) == pytest.approx(1.0)
            assert a.jaccard_containment(a) == pytest.approx(1.0)

    @given(weighted_sets(), weighted_sets())
    @settings(max_examples=100, deadline=None)
    def test_scores_in_unit_interval(self, a, b):
        for score in (a.jaccard_resemblance(b), a.jaccard_containment(b), a.dice(b)):
            assert -1e-9 <= score <= 1.0 + 1e-9
