"""Unit tests for American Soundex against the canonical reference codes."""

import pytest

from repro.tokenize.soundex import soundex


class TestCanonicalCodes:
    @pytest.mark.parametrize(
        "name,code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
            ("Washington", "W252"),
            ("Lee", "L000"),
            ("Gutierrez", "G362"),
            ("Jackson", "J250"),
        ],
    )
    def test_reference_codes(self, name, code):
        assert soundex(name) == code


class TestBehaviour:
    def test_case_insensitive(self):
        assert soundex("ROBERT") == soundex("robert")

    def test_non_alpha_ignored(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_empty_and_nonalpha(self):
        assert soundex("") == ""
        assert soundex("1234!") == ""

    def test_padded_to_four(self):
        assert len(soundex("Lee")) == 4

    def test_truncated_to_four(self):
        assert len(soundex("supercalifragilistic")) == 4

    def test_hw_transparent(self):
        # 'h' between letters of the same code group does not split them.
        assert soundex("Ashcraft") == "A261"  # not A226

    def test_vowel_separates_code_group(self):
        # Same-code consonants separated by a vowel are coded twice.
        assert soundex("Tymczak") == "T522"

    def test_single_letter(self):
        assert soundex("A") == "A000"
