"""Unit tests for word tokenization."""

from repro.tokenize.words import word_set, words


class TestWords:
    def test_basic(self):
        assert words("Microsoft Corp., Redmond") == ["microsoft", "corp", "redmond"]

    def test_alphanumeric_kept_together(self):
        assert words("148th Ave NE") == ["148th", "ave", "ne"]

    def test_duplicates_preserved(self):
        assert words("the cat the hat") == ["the", "cat", "the", "hat"]

    def test_empty(self):
        assert words("") == []

    def test_only_delimiters(self):
        assert words("-- ,, !!") == []

    def test_case_preserved_on_request(self):
        assert words("Ab Cd", lowercase=False) == ["Ab", "Cd"]

    def test_min_length(self):
        assert words("a bb ccc", min_length=2) == ["bb", "ccc"]


class TestWordSet:
    def test_dedupes_in_first_occurrence_order(self):
        assert word_set("b a b c a") == ["b", "a", "c"]

    def test_empty(self):
        assert word_set("") == []
