"""Determinism and shape tests for the synthetic data generators."""

import random

import pytest

from repro.data.corruptions import CorruptionConfig, corrupt
from repro.data.customers import CustomerConfig, generate_addresses, generate_customers
from repro.data.persons import PersonConfig, generate_persons
from repro.data.publications import PublicationConfig, generate_publications
from repro.data.rng import make_rng, zipf_choice
from repro.errors import DataGenerationError
from repro.sim.edit import edit_distance, edit_similarity


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(1, "x").random() == make_rng(1, "x").random()

    def test_streams_independent(self):
        assert make_rng(1, "x").random() != make_rng(1, "y").random()

    def test_zipf_prefers_early_ranks(self):
        rng = make_rng(0, "zipf")
        draws = [zipf_choice(rng, ["a", "b", "c", "d"], skew=1.5) for _ in range(500)]
        assert draws.count("a") > draws.count("d")

    def test_zipf_skew_zero_is_uniformish(self):
        rng = make_rng(0, "uniform")
        draws = [zipf_choice(rng, ["a", "b"], skew=0.0) for _ in range(400)]
        assert 100 < draws.count("a") < 300

    def test_zipf_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_choice(make_rng(0), [])


class TestCorruptions:
    def test_always_differs(self):
        rng = random.Random(0)
        for _ in range(100):
            assert corrupt("1 main st seattle wa", rng) != "1 main st seattle wa"

    def test_char_edit_only_bounds_distance(self):
        cfg = CorruptionConfig(
            char_edit_prob=1.0,
            max_char_edits=2,
            abbreviation_prob=0.0,
            token_drop_prob=0.0,
            token_swap_prob=0.0,
        )
        rng = random.Random(1)
        original = "123 evergreen ave seattle wa 98101"
        for _ in range(100):
            assert edit_distance(original, corrupt(original, rng, cfg)) <= 2

    def test_corrupted_variants_stay_similar(self):
        rng = random.Random(2)
        original = "123 evergreen terrace springfield il 62704"
        scores = [edit_similarity(original, corrupt(original, rng)) for _ in range(50)]
        assert sum(s >= 0.7 for s in scores) > 40

    def test_empty_string_gets_a_character(self):
        rng = random.Random(3)
        assert corrupt("", rng) != ""


class TestCustomers:
    def test_deterministic(self):
        cfg = CustomerConfig(num_rows=80, seed=5)
        assert generate_addresses(cfg) == generate_addresses(cfg)

    def test_row_count(self):
        assert len(generate_addresses(CustomerConfig(num_rows=37))) == 37

    def test_different_seeds_differ(self):
        a = generate_addresses(CustomerConfig(num_rows=50, seed=1))
        b = generate_addresses(CustomerConfig(num_rows=50, seed=2))
        assert a != b

    def test_duplicates_planted(self):
        rows = generate_addresses(CustomerConfig(num_rows=200, seed=7,
                                                 duplicate_fraction=0.3))
        # At least some near-duplicate pairs above 0.8 edit similarity.
        from repro.joins.direct import direct_join

        res = direct_join(rows, similarity=edit_similarity, threshold=0.8)
        assert len(res) > 5

    def test_zero_duplicates(self):
        rows = generate_addresses(
            CustomerConfig(num_rows=50, duplicate_fraction=0.0, seed=3)
        )
        assert len(rows) == 50

    def test_token_skew_exists(self):
        """State codes / suffixes must be heavy hitters (drives Sec 4.1)."""
        from collections import Counter

        rows = generate_addresses(CustomerConfig(num_rows=300, seed=11))
        tokens = Counter(t for row in rows for t in row.split())
        top = tokens.most_common(25)
        assert any(name in dict(top) for name in ("st", "ave", "wa", "rd"))

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            CustomerConfig(num_rows=0)
        with pytest.raises(DataGenerationError):
            CustomerConfig(duplicate_fraction=1.0)

    def test_customers_pair_names(self):
        rows = generate_customers(CustomerConfig(num_rows=30, seed=13))
        assert len(rows) == 30
        assert all(len(name.split()) == 2 for name, _ in rows)


class TestPublications:
    def test_deterministic(self):
        cfg = PublicationConfig(num_authors=10, seed=4)
        a, b = generate_publications(cfg), generate_publications(cfg)
        assert a.source1 == b.source1
        assert a.truth == b.truth

    def test_truth_covers_all_authors(self):
        data = generate_publications(PublicationConfig(num_authors=12, seed=6))
        assert len(data.truth) == 12

    def test_shared_titles_exist(self):
        data = generate_publications(PublicationConfig(num_authors=5, seed=8))
        titles1 = {t for _, t in data.source1}
        titles2 = {t for _, t in data.source2}
        assert titles2 <= titles1

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            PublicationConfig(num_authors=0)
        with pytest.raises(DataGenerationError):
            PublicationConfig(shared_fraction=0.0)


class TestPersons:
    def test_deterministic(self):
        cfg = PersonConfig(num_persons=15, seed=2)
        assert generate_persons(cfg).table1 == generate_persons(cfg).table1

    def test_most_pairs_agree_on_2_of_3(self):
        data = generate_persons(PersonConfig(num_persons=60, seed=4,
                                             disagreement_prob=0.1))
        by_name2 = {r["name"]: r for r in data.table2}
        agree2 = 0
        for r1 in data.table1:
            r2 = by_name2[data.truth[r1["name"]]]
            agreements = sum(r1[c] == r2[c] for c in ("address", "email", "phone"))
            agree2 += agreements >= 2
        assert agree2 > 45

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            PersonConfig(num_persons=0)
        with pytest.raises(DataGenerationError):
            PersonConfig(disagreement_prob=1.0)


class TestProducts:
    def test_deterministic(self):
        from repro.data.products import ProductConfig, generate_products

        cfg = ProductConfig(num_products=20, num_sales=10, seed=5)
        a, b = generate_products(cfg), generate_products(cfg)
        assert a.catalog == b.catalog
        assert a.sales == b.sales
        assert a.truth == b.truth

    def test_shapes(self):
        from repro.data.products import ProductConfig, generate_products

        data = generate_products(ProductConfig(num_products=30, num_sales=50, seed=1))
        assert len(data.catalog) == 30
        assert len(set(data.catalog)) == 30  # catalog entries are distinct
        assert len(data.sales) == 50
        assert set(data.truth) == set(range(50))
        assert set(data.truth.values()) <= set(data.catalog)

    def test_dirty_fraction_zero_gives_verbatim_sales(self):
        from repro.data.products import ProductConfig, generate_products

        data = generate_products(
            ProductConfig(num_products=10, num_sales=20, dirty_fraction=0.0, seed=2)
        )
        assert all(s in data.catalog for s in data.sales)

    def test_dirty_fraction_one_corrupts_everything(self):
        from repro.data.products import ProductConfig, generate_products

        data = generate_products(
            ProductConfig(num_products=10, num_sales=20, dirty_fraction=1.0, seed=3)
        )
        assert all(data.sales[i] != data.truth[i] for i in range(20))

    def test_config_validation(self):
        from repro.data.products import ProductConfig

        with pytest.raises(DataGenerationError):
            ProductConfig(num_products=0)
        with pytest.raises(DataGenerationError):
            ProductConfig(dirty_fraction=1.5)

    def test_lookup_recovers_truth(self):
        """End-to-end: q-gram containment lookup finds the right product."""
        from repro.data.products import ProductConfig, generate_products
        from repro.joins.topk import topk_matches
        from repro.tokenize.qgrams import qgrams

        data = generate_products(ProductConfig(num_products=40, num_sales=60, seed=9))
        matches = topk_matches(
            data.sales, data.catalog, k=1, threshold=0.35, weights="idf",
            tokenizer=lambda s: qgrams(s, 3),
        )
        correct = sum(
            1
            for i, sale in enumerate(data.sales)
            if matches.get(sale) and matches[sale][0].right == data.truth[i]
        )
        assert correct / len(data.sales) > 0.9


class TestCorruptionStyles:
    def test_keyboard_typo_stays_close(self):
        from repro.data.corruptions import keyboard_typo

        rng = random.Random(4)
        for _ in range(200):
            out = keyboard_typo(rng, "main street")
            assert edit_distance("main street", out) <= 1

    def test_keyboard_substitutions_are_adjacent(self):
        from repro.data.corruptions import _KEYBOARD_NEIGHBORS, keyboard_typo

        rng = random.Random(5)
        original = "qwerty"
        for _ in range(100):
            out = keyboard_typo(rng, original)
            if len(out) == len(original):
                diffs = [(a, b) for a, b in zip(original, out) if a != b]
                assert len(diffs) == 1
                a, b = diffs[0]
                assert b in _KEYBOARD_NEIGHBORS[a]

    def test_ocr_confusion_uses_glyph_table(self):
        from repro.data.corruptions import ocr_confusion

        rng = random.Random(6)
        outs = {ocr_confusion(rng, "suite 100") for _ in range(50)}
        # 1->l, 0->o, s->5 confusions must appear
        assert any("10o" in o or "1o0" in o or "l00" in o or "5uite" in o
                   for o in outs)

    def test_ocr_falls_back_without_confusable_glyphs(self):
        from repro.data.corruptions import ocr_confusion

        rng = random.Random(7)
        out = ocr_confusion(rng, "xyx")  # no confusable glyphs
        assert out != "xyx" or True  # falls back to a uniform edit; no crash

    def test_styles_through_config(self):
        for style in ("uniform", "keyboard", "ocr"):
            cfg = CorruptionConfig(char_edit_style=style)
            rng = random.Random(8)
            assert corrupt("12 main st seattle", rng, cfg) != "12 main st seattle"

    def test_unknown_style_rejected(self):
        cfg = CorruptionConfig(char_edit_style="cosmic-rays")
        with pytest.raises(ValueError):
            corrupt("abc def", random.Random(9), cfg)

    def test_edit_join_still_finds_keyboard_duplicates(self):
        """End-to-end: keyboard-style duplicates surface at 0.85."""
        cfg = CustomerConfig(
            num_rows=120, seed=21, duplicate_fraction=0.3,
            corruption=CorruptionConfig(char_edit_style="keyboard",
                                        max_char_edits=2),
        )
        rows = generate_addresses(cfg)
        from repro.joins.edit_join import edit_similarity_join

        res = edit_similarity_join(rows, threshold=0.85)
        assert len(res) > 0
