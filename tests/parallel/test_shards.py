"""Shard planner properties: balance, determinism, and SSJ108 coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import check_shards, verify_shards
from repro.core.encoded import encode_pair
from repro.core.encoded_prefix import group_prefix_lengths
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.errors import AnalysisError, PlanError
from repro.parallel.shards import (
    KIND_GROUP_HASH,
    KIND_TOKEN_RANGE,
    ShardDescriptor,
    plan_group_shards,
    plan_token_range_shards,
)
from repro.tokenize.sets import WeightedSet

from tests.core.test_implementations import prepared_relations


def _rel(sizes, name="r"):
    groups = {
        f"{name}{i}": WeightedSet({f"e{i}_{j}": 1.0 for j in range(k)})
        for i, k in enumerate(sizes)
    }
    return PreparedRelation.from_sets(groups, name=name)


class TestGroupShards:
    def test_partitions_positions_exactly(self):
        rel = _rel([3, 1, 7, 2, 2, 5])
        shards = plan_group_shards(rel, 3)
        positions = sorted(p for s in shards for p in s.group_positions)
        assert positions == list(range(6))
        assert all(s.kind == KIND_GROUP_HASH for s in shards)
        assert verify_shards(shards, rel.num_groups).ok

    def test_deterministic_across_calls(self):
        rel = _rel([4, 4, 1, 9, 3, 3, 2])
        a = plan_group_shards(rel, 4)
        b = plan_group_shards(rel, 4)
        assert a == b

    def test_balances_skewed_groups(self):
        # One giant group + many tiny ones: LPT puts the giant alone-ish.
        rel = _rel([100] + [1] * 10)
        shards = plan_group_shards(rel, 4)
        loads = sorted(s.est_cost for s in shards)
        # The giant group's shard dominates; the rest split the tiny ones.
        assert loads[-1] >= 100
        assert 0 in shards[0].group_positions or any(
            0 in s.group_positions for s in shards
        )

    def test_caps_at_group_count(self):
        rel = _rel([1, 1])
        shards = plan_group_shards(rel, 16)
        assert len(shards) <= 2
        assert verify_shards(shards, 2).ok

    def test_empty_relation(self):
        assert plan_group_shards(_rel([]), 4) == []

    def test_rejects_zero_shards(self):
        with pytest.raises(PlanError):
            plan_group_shards(_rel([1]), 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=12), max_size=20),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_covers(self, sizes, n_shards):
        rel = _rel(sizes)
        shards = plan_group_shards(rel, n_shards)
        assert verify_shards(shards, rel.num_groups).ok


class TestTokenRangeShards:
    def _planned(self, n_shards):
        left = _rel([3, 5, 2, 7, 4], name="l")
        right = _rel([4, 2, 6, 3], name="s")
        enc_l, enc_r, d = encode_pair(left, right)
        pred = OverlapPredicate.two_sided(0.5)
        lp = group_prefix_lengths(enc_l, pred.left_filter_threshold)
        rp = group_prefix_lengths(enc_r, pred.right_filter_threshold)
        shards = plan_token_range_shards(
            enc_l.ids, lp, enc_r.ids, rp, len(d), n_shards
        )
        return shards, len(d)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 8, 1000])
    def test_tiles_dictionary_exactly(self, n_shards):
        shards, universe = self._planned(n_shards)
        assert verify_shards(shards, universe).ok
        assert shards[0].lo == 0
        assert shards[-1].hi == universe
        assert all(s.kind == KIND_TOKEN_RANGE for s in shards)
        assert len(shards) <= min(n_shards, universe)

    def test_empty_universe(self):
        assert plan_token_range_shards([], [], [], [], 0, 4) == []

    def test_rejects_zero_shards(self):
        with pytest.raises(PlanError):
            plan_token_range_shards([], [], [], [], 5, 0)

    @given(prepared_relations("r"), prepared_relations("s"),
           st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_always_tiles(self, left, right, n_shards):
        enc_l, enc_r, d = encode_pair(left, right)
        pred = OverlapPredicate.two_sided(0.4)
        lp = group_prefix_lengths(enc_l, pred.left_filter_threshold)
        rp = group_prefix_lengths(enc_r, pred.right_filter_threshold)
        shards = plan_token_range_shards(
            enc_l.ids, lp, enc_r.ids, rp, len(d), n_shards
        )
        assert verify_shards(shards, len(d)).ok


class TestSSJ108:
    def _range(self, shard_id, lo, hi):
        return ShardDescriptor(shard_id=shard_id, kind=KIND_TOKEN_RANGE, lo=lo, hi=hi)

    def test_gap_is_an_error(self):
        report = verify_shards([self._range(0, 0, 3), self._range(1, 4, 8)], 8)
        assert not report.ok
        assert any("gap" in d.message for d in report.errors())

    def test_overlap_is_an_error(self):
        report = verify_shards([self._range(0, 0, 5), self._range(1, 4, 8)], 8)
        assert not report.ok
        assert any("overlap" in d.message for d in report.errors())

    def test_short_tail_is_an_error(self):
        report = verify_shards([self._range(0, 0, 6)], 8)
        assert not report.ok

    def test_empty_plan_over_nonempty_universe(self):
        assert not verify_shards([], 3).ok
        assert verify_shards([], 0).ok

    def test_missing_group_position(self):
        shards = [
            ShardDescriptor(shard_id=0, kind=KIND_GROUP_HASH, group_positions=(0, 2))
        ]
        report = verify_shards(shards, 3)
        assert not report.ok
        assert any("missing" in d.message for d in report.errors())

    def test_duplicated_group_position(self):
        shards = [
            ShardDescriptor(shard_id=0, kind=KIND_GROUP_HASH, group_positions=(0, 1)),
            ShardDescriptor(shard_id=1, kind=KIND_GROUP_HASH, group_positions=(1, 2)),
        ]
        report = verify_shards(shards, 3)
        assert not report.ok
        assert any("duplicated" in d.message for d in report.errors())

    def test_mixed_kinds_rejected(self):
        shards = [
            self._range(0, 0, 3),
            ShardDescriptor(shard_id=1, kind=KIND_GROUP_HASH, group_positions=(0,)),
        ]
        assert not verify_shards(shards, 3).ok

    def test_duplicate_shard_ids_rejected(self):
        assert not verify_shards(
            [self._range(0, 0, 4), self._range(0, 4, 8)], 8
        ).ok

    def test_check_shards_raises(self):
        with pytest.raises(AnalysisError):
            check_shards([self._range(0, 0, 3)], 8)
        check_shards([self._range(0, 0, 8)], 8)  # clean plan passes
