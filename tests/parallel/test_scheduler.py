"""Adaptive scheduler: worker choice, shard counts, and the cost model."""

import pytest

from repro.core.optimizer import CostModel
from repro.errors import PlanError
from repro.parallel.scheduler import (
    OVERSPLIT,
    available_workers,
    choose_workers,
    shard_count,
)


class TestShardCount:
    def test_oversplits(self):
        assert shard_count(4) == 4 * OVERSPLIT
        assert shard_count(1) == OVERSPLIT
        assert shard_count(3, oversplit=2) == 6

    def test_floor_of_one(self):
        assert shard_count(1, oversplit=0) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(PlanError):
            shard_count(0)


class TestChooseWorkers:
    def test_explicit_int_is_honored(self):
        # An explicit request bypasses the cost model entirely.
        assert choose_workers(3, sequential_cost=1.0, ship_elements=1) == 3
        assert choose_workers(1, sequential_cost=1e12, ship_elements=1) == 1

    def test_rejects_bool_and_bad_values(self):
        with pytest.raises(PlanError):
            choose_workers(True, sequential_cost=1.0, ship_elements=1)
        with pytest.raises(PlanError):
            choose_workers(0, sequential_cost=1.0, ship_elements=1)
        with pytest.raises(PlanError):
            choose_workers("fast", sequential_cost=1.0, ship_elements=1)

    def test_auto_small_join_stays_sequential(self):
        # Tiny join: spawn overhead dwarfs any split gain.
        assert (
            choose_workers("auto", sequential_cost=10.0, ship_elements=10)
            == 1
        )

    def test_auto_large_join_goes_parallel(self):
        w = choose_workers(
            "auto",
            sequential_cost=1e9,
            ship_elements=1000,
            max_workers=4,
        )
        assert w > 1

    def test_auto_respects_max_workers(self):
        w = choose_workers(
            "auto",
            sequential_cost=1e12,
            ship_elements=0,
            max_workers=2,
        )
        assert w <= 2

    def test_auto_crossover_is_monotone_in_cost(self):
        # Once "auto" flips to parallel, larger joins never flip back.
        model = CostModel()
        chosen = [
            choose_workers("auto", sequential_cost=c, ship_elements=100,
                           model=model, max_workers=8)
            for c in (1e2, 1e4, 1e6, 1e8, 1e10)
        ]
        first_parallel = next(
            (i for i, w in enumerate(chosen) if w > 1), len(chosen)
        )
        assert all(w == 1 for w in chosen[:first_parallel])
        assert all(w > 1 for w in chosen[first_parallel:])


class TestParallelCost:
    def test_sequential_when_one_worker(self):
        model = CostModel()
        assert model.parallel_cost(1e6, 1, ship_elements=50) == 1e6

    def test_decreasing_then_overhead_bound(self):
        # For a big join, going 1 -> 2 workers must help; overhead terms
        # eventually dominate as workers grow without bound.
        model = CostModel()
        seq = 1e8
        c1 = model.parallel_cost(seq, 1, ship_elements=100)
        c2 = model.parallel_cost(seq, 2, ship_elements=100)
        c_huge = model.parallel_cost(seq, 100000, ship_elements=100)
        assert c2 < c1
        assert c_huge > c2

    def test_ship_cost_scales_with_workers(self):
        model = CostModel()
        light = model.parallel_cost(1e6, 4, ship_elements=0)
        heavy = model.parallel_cost(1e6, 4, ship_elements=10**7)
        assert heavy > light


def test_available_workers_positive():
    assert available_workers() >= 1
