"""Satellite 3: parallel == sequential, for every predicate × plan × workers.

Hypothesis drives random prepared relations and all six predicate
families (reusing the strategies from the core implementation suite)
through ``parallel_ssjoin`` with workers ∈ {1, 2, 4} on the in-process
serial backend, asserting *exact* equality with the sequential operator:
the same canonically-sorted row list — keys, overlaps, and norms, down
to float bits — and the same merged ``output_pairs`` /
``candidate_pairs`` totals.
"""

import pytest
from hypothesis import given, settings

from repro.core.metrics import ExecutionMetrics
from repro.core.ssjoin import SSJoin
from repro.parallel import (
    BACKEND_SERIAL,
    KIND_GROUP_HASH,
    KIND_TOKEN_RANGE,
    canonical_sort_key,
    parallel_ssjoin,
)

from tests.core.test_implementations import (
    oracle,
    predicates,
    prepared_relations,
)

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)

WORKERS = (1, 2, 4)


def _sequential(left, right, predicate, implementation):
    metrics = ExecutionMetrics()
    result = SSJoin(left, right, predicate).execute(
        implementation, metrics=metrics
    )
    return sorted(result.pairs.rows, key=canonical_sort_key), metrics


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
class TestParallelMatchesSequential:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=40, deadline=None)
    def test_rows_and_metrics_identical(
        self, implementation, left, right, predicate
    ):
        expected_rows, expected_metrics = _sequential(
            left, right, predicate, implementation
        )
        for workers in WORKERS:
            metrics = ExecutionMetrics()
            result = parallel_ssjoin(
                left,
                right,
                predicate,
                workers=workers,
                implementation=implementation,
                metrics=metrics,
                backend=BACKEND_SERIAL,
            )
            # Exact list equality: same rows, same order, same float bits.
            assert list(result.pairs.rows) == expected_rows, (
                f"workers={workers}"
            )
            assert metrics.output_pairs == expected_metrics.output_pairs
            assert metrics.candidate_pairs == expected_metrics.candidate_pairs
            assert result.implementation == implementation

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, implementation, left, right, predicate):
        result = parallel_ssjoin(
            left,
            right,
            predicate,
            workers=2,
            implementation=implementation,
            backend=BACKEND_SERIAL,
        )
        assert result.pair_set() == oracle(left, right, predicate)


class TestStrategySelection:
    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=20, deadline=None)
    def test_strategy_follows_plan_family(self, left, right, predicate):
        for implementation, kind in (
            ("encoded-prefix", KIND_TOKEN_RANGE),
            ("prefix", KIND_GROUP_HASH),
        ):
            report = parallel_ssjoin(
                left,
                right,
                predicate,
                workers=2,
                implementation=implementation,
                backend=BACKEND_SERIAL,
            ).parallel
            assert report is not None
            if report.mode == "parallel":
                assert report.strategy == kind
                assert report.workers == 2
            else:
                # Empty/degenerate inputs fall back to sequential.
                assert report.workers == 1

    @given(prepared_relations("r"), prepared_relations("s"), predicates())
    @settings(max_examples=20, deadline=None)
    def test_workers_one_is_sequential_mode(self, left, right, predicate):
        report = parallel_ssjoin(
            left,
            right,
            predicate,
            workers=1,
            backend=BACKEND_SERIAL,
        ).parallel
        assert report is not None
        assert report.mode == "sequential"
        assert report.workers == 1
