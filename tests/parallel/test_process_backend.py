"""Process-pool backend: real multi-process runs match the serial backend.

These tests actually spawn a ``ProcessPoolExecutor`` (2 workers), so
they use one modest fixed dataset rather than Hypothesis-driven inputs —
the property coverage lives in ``test_parallel_equivalence`` on the
in-process serial backend, which runs the *same* shard code.
"""

import pytest

from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.parallel import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    canonical_sort_key,
    parallel_ssjoin,
)
from repro.tokenize.words import words

_LEFT_STRINGS = [
    "microsoft corp redmond wa",
    "microsoft corporation",
    "intl business machines armonk",
    "international business machines corp",
    "oracle systems corp",
    "oracle corporation redwood shores",
    "sun microsystems inc",
    "data cleaning services llc",
    "similarity joins r us",
    "prefix filter heavy industries",
    "weighted set operations gmbh",
    "token dictionary builders",
]
_RIGHT_STRINGS = [
    "microsoft corp",
    "intl business machines corp",
    "oracle corp",
    "sun microsystems",
    "data cleaning service",
    "similarity join operators",
    "prefix filtering industries",
    "weighted sets operation",
    "token dictionaries builder",
    "completely unrelated entry",
]


@pytest.fixture(scope="module")
def relations():
    left = PreparedRelation.from_strings(_LEFT_STRINGS, words, name="L")
    right = PreparedRelation.from_strings(_RIGHT_STRINGS, words, name="R")
    return left, right


@pytest.mark.parametrize(
    "implementation", ["encoded-prefix", "prefix", "basic"]
)
def test_process_backend_matches_sequential(relations, implementation):
    left, right = relations
    predicate = OverlapPredicate.two_sided(0.4)

    sequential = SSJoin(left, right, predicate).execute(implementation)
    expected = sorted(sequential.pairs.rows, key=canonical_sort_key)

    serial_rows = None
    for backend in (BACKEND_SERIAL, BACKEND_PROCESS):
        metrics = ExecutionMetrics()
        result = parallel_ssjoin(
            left,
            right,
            predicate,
            workers=2,
            implementation=implementation,
            metrics=metrics,
            backend=backend,
        )
        assert list(result.pairs.rows) == expected, backend
        assert metrics.output_pairs == sequential.metrics.output_pairs
        assert metrics.candidate_pairs == sequential.metrics.candidate_pairs
        if serial_rows is None:
            serial_rows = list(result.pairs.rows)
        else:
            assert list(result.pairs.rows) == serial_rows

        report = result.parallel
        assert report is not None
        assert report.mode == "parallel"
        assert report.requested == 2
        assert report.workers == 2
        assert report.backend == backend
        assert report.n_shards >= 2
        assert report.wall_seconds > 0
        # Per-shard telemetry present and internally consistent.
        assert len(report.shards) == report.n_shards
        assert sum(t.rows for t in report.shards) >= len(expected) or (
            implementation != "encoded-prefix"
        )
        for t in report.shards:
            assert t.seconds >= 0
            assert t.kind == report.strategy
        assert report.critical_path_seconds <= report.serial_shard_seconds + 1e-9
        assert report.modeled_wall_seconds >= report.critical_path_seconds


def test_metrics_carry_parallel_stats(relations):
    left, right = relations
    metrics = ExecutionMetrics()
    result = parallel_ssjoin(
        left,
        right,
        OverlapPredicate.two_sided(0.5),
        workers=2,
        implementation="encoded-prefix",
        metrics=metrics,
        backend=BACKEND_PROCESS,
    )
    stats = metrics.parallel_stats
    assert stats is not None
    assert stats == result.parallel.to_dict()
    for key in ("mode", "strategy", "workers", "n_shards",
                "wall_seconds", "modeled_wall_seconds", "shards"):
        assert key in stats


def test_facade_workers_round_trip(relations):
    """`SSJoin.execute(workers=...)` delegates to the parallel executor."""
    left, right = relations
    predicate = OverlapPredicate.two_sided(0.4)
    sequential = SSJoin(left, right, predicate).execute("encoded-prefix")
    expected = sorted(sequential.pairs.rows, key=canonical_sort_key)

    result = SSJoin(left, right, predicate).execute(
        "encoded-prefix", workers=2
    )
    assert list(result.pairs.rows) == expected
    assert result.parallel is not None
    assert result.parallel.workers == 2
