"""E12 — extension: PPJoin's positional filter vs plain prefix filtering.

The reproduced paper's prefix filter spawned PPJoin (WWW'08); this bench
quantifies what the positional filter adds on the same workload: verified
candidates and wall time for an unweighted set-Jaccard self-join, PPJoin
vs the inline prefix-filtered SSJoin plan.
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.reporting import render_table
from repro.core.metrics import ExecutionMetrics
from repro.extensions.ppjoin import ppjoin_strings
from repro.joins.jaccard_join import jaccard_resemblance_join
from repro.tokenize.words import word_set

_CELLS = {}


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_ppjoin_cell(benchmark, jaccard_addresses, threshold):
    def run():
        m = ExecutionMetrics()
        return ppjoin_strings(jaccard_addresses, threshold=threshold, metrics=m)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _CELLS[(threshold, "ppjoin")] = (
        res.metrics.similarity_comparisons,
        res.metrics.total_seconds,
        len(res),
    )


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_prefix_ssjoin_cell(benchmark, jaccard_addresses, threshold):
    # Unweighted distinct-token sets: the setting PPJoin is defined for.
    def run():
        return jaccard_resemblance_join(
            jaccard_addresses,
            threshold=threshold,
            weights=None,
            tokenizer=word_set,
            implementation="inline",
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _CELLS[(threshold, "prefix")] = (
        res.metrics.candidate_pairs,
        res.metrics.total_seconds,
        len(res),
    )


def test_zz_render_ppjoin(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for t in THRESHOLDS:
        pp_cand, pp_time, pp_pairs = _CELLS[(t, "ppjoin")]
        pf_cand, pf_time, pf_pairs = _CELLS[(t, "prefix")]
        rows.append(
            [f"{t:.2f}", pf_cand, pp_cand, f"{pf_time:.3f}", f"{pp_time:.3f}",
             pf_pairs, pp_pairs]
        )
    text = render_table(
        ["threshold", "prefix cands", "ppjoin verified", "prefix s",
         "ppjoin s", "prefix pairs", "ppjoin pairs"],
        rows,
    )
    write_artifact(results_dir, "ext_ppjoin.txt",
                   "E12 — PPJoin positional filter vs prefix filter\n" + text)

    for t in THRESHOLDS:
        # The positional filter may only shrink the verified-candidate set.
        assert _CELLS[(t, "ppjoin")][0] <= _CELLS[(t, "prefix")][0]
        # Both find the same number of matching (unordered) pairs. Note the
        # SSJoin jaccard join uses multiset semantics; with word_set input
        # (distinct tokens) they coincide.
        assert _CELLS[(t, "ppjoin")][2] == _CELLS[(t, "prefix")][2]
