"""E8 — beyond textual similarity (Section 3.4): co-occurrence & soft-FD
joins ride the same SSJoin machinery.

The paper runs no separate experiments for these ("we have already seen
that our physical implementations ... can be significantly more efficient
than the basic implementations and the cross product plans"); this bench
documents that the reductions run at SSJoin speed and recover the planted
ground truth.
"""

import pytest

from benchmarks.conftest import bench_rows, write_artifact
from repro.bench.reporting import render_table
from repro.data.persons import PersonConfig, generate_persons
from repro.data.publications import PublicationConfig, generate_publications
from repro.joins.cooccurrence import cooccurrence_join
from repro.joins.fd_join import fd_agreement_join

_ROWS = []


def test_cooccurrence_join_perf(benchmark):
    data = generate_publications(
        PublicationConfig(num_authors=bench_rows(700) // 4, seed=1)
    )

    def run():
        return cooccurrence_join(data.source2, data.source1, threshold=0.9,
                                 weights=None)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = {(full, abbrev) for abbrev, full in data.truth.items()}
    recall = len(truth & res.pair_set()) / len(truth)
    _ROWS.append(["co-occurrence (authors by titles)", len(res),
                  f"{recall:.2f}", f"{res.metrics.total_seconds:.3f}"])
    assert recall == 1.0


def test_fd_join_perf(benchmark):
    data = generate_persons(
        PersonConfig(num_persons=bench_rows(700), seed=2, disagreement_prob=0.12)
    )

    def run():
        return fd_agreement_join(data.table1, data.table2, k=2)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = {(n1, n2) for n1, n2 in data.truth.items()}
    found = res.pair_set()
    recall = len(truth & found) / len(truth)
    _ROWS.append(["soft-FD 2-of-3 (persons)", len(res),
                  f"{recall:.2f}", f"{res.metrics.total_seconds:.3f}"])
    # Per-attribute disagreement 0.12 => ~95% of twins agree on >= 2 of 3.
    assert recall > 0.85


def test_zz_render_nontextual(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = render_table(["join", "pairs", "recall", "time (s)"], _ROWS)
    write_artifact(results_dir, "nontextual.txt",
                   "E8 — non-textual similarity joins via SSJoin\n" + text)
