"""E4 — Figure 12: Jaccard resemblance join, IDF-weighted word tokens.

Paper shapes: prefix-filtered 5–10× faster than basic; inline ≈30% faster
than plain prefix; in the basic plan virtually all time is the SSJoin
phase; prefix-filtered time grows as the threshold drops. The
dictionary-encoded prefix plan rides the same sweep and must beat the
tuple prefix plan it replaces (see BENCH_core.json for the committed
full-scale numbers).
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.harness import SweepRunner
from repro.bench.figures import figure_from_records
from repro.bench.reporting import render_json, render_phase_table, render_series, speedup_table
from repro.joins.jaccard_join import jaccard_resemblance_join

_RECORDS = []

_IMPLEMENTATIONS = ["basic", "prefix", "inline", "encoded-prefix", "encoded-probe"]


@pytest.mark.parametrize("implementation", _IMPLEMENTATIONS)
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_jaccard_sweep(benchmark, jaccard_addresses, implementation, threshold):
    runner = SweepRunner(
        "fig12-jaccard",
        lambda t, i: jaccard_resemblance_join(
            jaccard_addresses, threshold=t, weights="idf", implementation=i
        ),
    )
    benchmark.pedantic(
        lambda: runner.run([threshold], implementations=[implementation]),
        rounds=1,
        iterations=1,
    )
    _RECORDS.extend(runner.records[-1:])


def test_zz_render_figure12(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RECORDS
    panels = [
        render_phase_table(
            [r for r in _RECORDS if r.implementation == impl],
            title=f"Figure 12 — Jaccard resemblance join [{impl}]",
        )
        for impl in _IMPLEMENTATIONS
    ]
    text = "\n\n".join(panels)
    text += "\n\n" + "\n\n".join(
        figure_from_records(
            [r for r in _RECORDS if r.implementation == impl],
            title=f"ASCII stacked bars [{impl}]",
        )
        for impl in ("basic", "prefix", "inline")
    )

    series = render_series(_RECORDS)
    basic = dict(series["basic"])
    prefix = dict(series["prefix"])
    inline = dict(series["inline"])
    encoded = dict(series["encoded-prefix"])
    speedups = [
        f"threshold {t:.2f}: basic/prefix={basic[t] / prefix[t]:.1f}x, "
        f"prefix/inline={prefix[t] / inline[t]:.1f}x, "
        f"prefix/encoded-prefix={prefix[t] / encoded[t]:.1f}x"
        for t in THRESHOLDS
    ]
    text += "\n\nSpeedups:\n" + "\n".join(speedups)
    write_artifact(results_dir, "fig12_jaccard.txt", text)

    # Machine-readable twin of the rendered panels (repro-bench/v1).
    (results_dir / "fig12_jaccard.json").write_text(
        render_json(
            _RECORDS,
            label="fig12-jaccard",
            speedups={
                "prefix/encoded-prefix": speedup_table(
                    _RECORDS, "prefix", "encoded-prefix"
                )
            },
        )
        + "\n"
    )

    # Prefix family must beat basic across the sweep (paper: 5-10x). The
    # inline-vs-prefix margin (paper: ~30%) only emerges at row counts
    # where the regroup joins dominate encoding overhead, so at benchmark
    # scale it is asserted loosely and reported exactly.
    for t in THRESHOLDS:
        assert prefix[t] < basic[t], f"prefix must beat basic at {t}"
        assert inline[t] < basic[t], f"inline must beat basic at {t}"
        assert inline[t] <= prefix[t] * 2.0, f"inline must stay competitive at {t}"
        assert encoded[t] < prefix[t], f"encoded-prefix must beat prefix at {t}"
