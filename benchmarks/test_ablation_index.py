"""E11 — ablation: the fixed index-based strategy of [13] vs cost-based choice.

Section 5: "a fixed index-based strategy for similarity joins as in [13]
and [6] is unlikely to be optimal always. Instead, we must proceed with a
cost-based choice that is sensitive to the data characteristics." This
bench runs the index-probe plan alongside the other three implementations
on two workloads with different characteristics and shows no single plan
wins both — while the cost-based choice stays near the per-workload best.
"""

import pytest

from benchmarks.conftest import bench_rows, write_artifact
from repro.bench.reporting import render_table
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import MaxNormBound, OverlapPredicate
from repro.core.prepared import NORM_LENGTH, NORM_WEIGHT, PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.joins.jaccard_join import resolve_weights
from repro.tokenize.qgrams import qgrams
from repro.tokenize.words import words

IMPLEMENTATIONS = ("basic", "prefix", "inline", "probe")
_CELLS = {}


def _workloads(addresses):
    """Two workloads with different data characteristics."""
    table = resolve_weights("idf", words, addresses, addresses)
    jaccard = (
        PreparedRelation.from_strings(
            addresses, words, weights=table, norm=NORM_WEIGHT, name="words"
        ),
        OverlapPredicate.two_sided(0.85),
    )
    edit = (
        PreparedRelation.from_strings(
            addresses, lambda s: qgrams(s, 3), norm=NORM_LENGTH, name="qgrams"
        ),
        OverlapPredicate([MaxNormBound(1.0, float(1 - 3 - 3 * 3))]),  # eps=3
    )
    return {"jaccard-0.85": jaccard, "edit-eps3": edit}


@pytest.mark.parametrize("workload", ["jaccard-0.85", "edit-eps3"])
@pytest.mark.parametrize("implementation", IMPLEMENTATIONS + ("auto",))
def test_index_ablation_cell(benchmark, addresses, workload, implementation):
    prepared, predicate = _workloads(addresses)[workload]
    op = SSJoin(prepared, prepared, predicate)

    def run():
        return op.execute(implementation)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _CELLS[(workload, implementation)] = (
        result.metrics.total_seconds,
        len(result),
        result.implementation,
    )


def test_zz_render_index_ablation(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload in ("jaccard-0.85", "edit-eps3"):
        times = {i: _CELLS[(workload, i)][0] for i in IMPLEMENTATIONS}
        auto_time, _, auto_choice = _CELLS[(workload, "auto")]
        best = min(times, key=times.get)
        rows.append(
            [workload]
            + [f"{times[i]:.3f}" for i in IMPLEMENTATIONS]
            + [f"{auto_time:.3f}", auto_choice, best]
        )
        # All implementations must agree on the answer.
        outputs = {_CELLS[(workload, i)][1] for i in IMPLEMENTATIONS}
        assert len(outputs) == 1
    text = render_table(
        ["workload"] + list(IMPLEMENTATIONS) + ["auto", "auto chose", "best"], rows
    )
    write_artifact(
        results_dir,
        "ablation_index.txt",
        "E11 — fixed index plan [13] vs cost-based choice\n" + text,
    )
