"""E2 — Figure 11: the customized edit-similarity join of [9].

Paper shape: the custom plan (q-gram merge + length/position filters +
edit UDF) is slower than the SSJoin-based implementations because it
verifies far more candidates (see also Table 1).
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.harness import SweepRunner
from repro.bench.reporting import render_phase_table
from repro.joins.edit_join import edit_similarity_join
from repro.joins.gravano import gravano_edit_join

_RECORDS = []


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_custom_edit_sweep(benchmark, addresses, threshold):
    runner = SweepRunner(
        "fig11-custom",
        lambda t, i: gravano_edit_join(addresses, threshold=t),
    )
    benchmark.pedantic(
        lambda: runner.run([threshold], implementations=["custom"]),
        rounds=1,
        iterations=1,
    )
    _RECORDS.extend(runner.records[-1:])


def test_zz_render_figure11(benchmark, addresses, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RECORDS
    text = render_phase_table(
        _RECORDS, title="Figure 11 — customized edit similarity join [9]"
    )
    # Cross-check against the best SSJoin plan at the tightest threshold.
    inline = edit_similarity_join(addresses, threshold=0.95, implementation="inline")
    custom95 = next(r for r in _RECORDS if r.threshold == 0.95)
    text += (
        f"\n\nAt threshold 0.95: custom={custom95.total_seconds:.3f}s "
        f"vs SSJoin-inline={inline.metrics.total_seconds:.3f}s; "
        f"custom UDF calls={custom95.similarity_comparisons} "
        f"vs SSJoin={inline.metrics.similarity_comparisons}"
    )
    write_artifact(results_dir, "fig11_custom_edit.txt", text)
    assert custom95.similarity_comparisons > inline.metrics.similarity_comparisons
