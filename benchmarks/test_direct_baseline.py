"""E7 — the UDF-over-cross-product plan the paper argues against.

Section 3: a direct UDF implementation forces a cross product. Even at a
deliberately small n the gap to the SSJoin plan is an order of magnitude in
similarity computations — and it grows quadratically.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.reporting import render_table
from repro.joins.direct import direct_join
from repro.joins.edit_join import edit_similarity_join
from repro.sim.edit import edit_similarity

_RESULTS = {}


def test_direct_udf_plan(benchmark, small_addresses):
    res = benchmark.pedantic(
        lambda: direct_join(small_addresses, similarity=edit_similarity, threshold=0.85),
        rounds=1,
        iterations=1,
    )
    _RESULTS["direct"] = res


def test_ssjoin_plan(benchmark, small_addresses):
    res = benchmark.pedantic(
        lambda: edit_similarity_join(
            small_addresses, threshold=0.85, implementation="inline"
        ),
        rounds=1,
        iterations=1,
    )
    _RESULTS["ssjoin"] = res


def test_zz_render_direct_baseline(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    direct = _RESULTS["direct"]
    ssjoin = _RESULTS["ssjoin"]
    assert direct.pair_set() == ssjoin.pair_set()
    rows = [
        ["direct UDF (cross product)", direct.metrics.similarity_comparisons,
         f"{direct.metrics.total_seconds:.3f}"],
        ["SSJoin (inline)", ssjoin.metrics.similarity_comparisons,
         f"{ssjoin.metrics.total_seconds:.3f}"],
    ]
    text = render_table(["plan", "edit UDF calls", "time (s)"], rows)
    write_artifact(results_dir, "direct_baseline.txt",
                   "E7 — direct UDF plan vs SSJoin plan (edit similarity 0.85)\n" + text)
    assert (
        direct.metrics.similarity_comparisons
        >= 10 * ssjoin.metrics.similarity_comparisons
    )
