"""E14 — counter regression baselines.

Machine-independent counters (candidate pairs, equi-join rows, UDF calls)
for fixed seeds are recorded into ``benchmarks/baselines.json`` on the
first run and compared exactly on every later run: a refactor that weakens
the prefix filter or changes a reduction's answer fails here even when
wall time looks fine.
"""

from pathlib import Path

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.baseline import CounterBaseline
from repro.bench.reporting import render_table
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.edit_join import edit_similarity_join
from repro.joins.jaccard_join import jaccard_resemblance_join

BASELINE_PATH = Path(__file__).parent / "baselines.json"

#: (name, runner) — every runner is fully seed-deterministic.
def _rows():
    return generate_addresses(CustomerConfig(num_rows=300, seed=424242))


CASES = {
    "edit-0.85-inline": lambda: edit_similarity_join(
        _rows(), threshold=0.85, implementation="inline"
    ),
    "edit-0.85-basic": lambda: edit_similarity_join(
        _rows(), threshold=0.85, implementation="basic"
    ),
    "jaccard-0.8-prefix": lambda: jaccard_resemblance_join(
        _rows(), threshold=0.8, weights="idf", implementation="prefix"
    ),
    "jaccard-0.8-probe": lambda: jaccard_resemblance_join(
        _rows(), threshold=0.8, weights="idf", implementation="probe"
    ),
}

_RESULTS = {}


@pytest.mark.parametrize("name", sorted(CASES))
def test_counter_baseline(benchmark, name):
    result = benchmark.pedantic(CASES[name], rounds=1, iterations=1)
    _RESULTS[name] = result.metrics

    baseline = CounterBaseline.load(BASELINE_PATH)
    if name not in baseline.entries:
        baseline.record(name, result.metrics)
        baseline.save()
    else:
        baseline.check(name, result.metrics, exact=True)


def test_zz_render_baselines(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, m.candidate_pairs, m.similarity_comparisons, m.result_pairs]
        for name, m in sorted(_RESULTS.items())
    ]
    text = render_table(["case", "candidates", "udf calls", "pairs"], rows)
    write_artifact(results_dir, "counter_baselines.txt",
                   "E14 — machine-independent counter baselines\n" + text)
