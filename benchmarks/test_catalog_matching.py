"""E13 — R–S matching: sales records against a master product catalog.

The paper's figures are all self-joins; its *motivation* is the R–S form —
joining dirty sales records with reference catalogs. This bench runs that
workload (q-gram containment lookup through the SSJoin operator) and
reports throughput and match quality against ground truth, plus the cost
of the cross-product plan on the same data.
"""

import pytest

from benchmarks.conftest import bench_rows, write_artifact
from repro.bench.reporting import render_table
from repro.data.products import ProductConfig, generate_products
from repro.joins.direct import direct_join
from repro.joins.topk import topk_matches
from repro.sim.jaccard import string_jaccard_containment
from repro.tokenize.qgrams import qgrams

_ROWS = []


@pytest.fixture(scope="module")
def product_data():
    n = bench_rows(700)
    return generate_products(
        ProductConfig(num_products=n // 2, num_sales=n, seed=20060403)
    )


def test_ssjoin_lookup(benchmark, product_data):
    def run():
        return topk_matches(
            product_data.sales,
            product_data.catalog,
            k=1,
            threshold=0.4,
            weights="idf",
            tokenizer=lambda s: qgrams(s, 3),
        )

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    correct = sum(
        1
        for i, sale in enumerate(product_data.sales)
        if matches.get(sale) and matches[sale][0].right == product_data.truth[i]
    )
    accuracy = correct / len(product_data.sales)
    _ROWS.append(["SSJoin containment lookup", f"{accuracy:.3f}", len(matches)])
    assert accuracy > 0.85


def test_direct_lookup_baseline(benchmark, product_data):
    tokenizer = lambda s: qgrams(s, 3)  # noqa: E731

    def run():
        return direct_join(
            product_data.sales,
            product_data.catalog,
            similarity=lambda a, b: string_jaccard_containment(
                a, b, tokenizer=tokenizer
            ),
            threshold=0.4,
            symmetric=False,
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(
        ["direct UDF cross product", "-", res.metrics.similarity_comparisons]
    )


def test_zz_render_catalog_matching(benchmark, results_dir, product_data):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = render_table(["plan", "top-1 accuracy", "work"], _ROWS)
    header = (
        f"E13 — catalog matching ({len(product_data.sales)} sales vs "
        f"{len(product_data.catalog)} products)\n"
    )
    write_artifact(results_dir, "catalog_matching.txt", header + text)
