"""Shared fixtures for the paper-reproduction benchmarks.

Dataset sizes are scaled down from the paper's 25K-row Customer relation
(pure Python vs SQL Server's C++ runtime — see DESIGN.md §2); set
``REPRO_BENCH_ROWS`` to raise them. Every figure/table benchmark writes its
rendered artifact into ``benchmarks/results/`` so the numbers survive the
run.
"""

import os
from pathlib import Path

import pytest

from repro.data.corruptions import CorruptionConfig
from repro.data.customers import CustomerConfig, generate_addresses

#: Paper threshold sweep (Figures 10-13).
THRESHOLDS = (0.80, 0.85, 0.90, 0.95)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_rows(default: int) -> int:
    value = os.environ.get("REPRO_BENCH_ROWS")
    return int(value) if value else default


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def addresses():
    """The Customer-relation stand-in used by the edit/Jaccard figures."""
    config = CustomerConfig(
        num_rows=bench_rows(700),
        duplicate_fraction=0.25,
        seed=20060403,
        corruption=CorruptionConfig(char_edit_prob=0.8, max_char_edits=2,
                                    abbreviation_prob=0.3, token_drop_prob=0.08,
                                    token_swap_prob=0.08),
    )
    return generate_addresses(config)


@pytest.fixture(scope="session")
def jaccard_addresses():
    """Duplicates skewed toward token-level noise (swaps, abbreviations),
    which word-token Jaccard can see — character typos mostly cannot."""
    config = CustomerConfig(
        num_rows=bench_rows(700),
        duplicate_fraction=0.25,
        seed=20060403,
        corruption=CorruptionConfig(char_edit_prob=0.35, max_char_edits=1,
                                    abbreviation_prob=0.55, token_drop_prob=0.15,
                                    token_swap_prob=0.45),
    )
    return generate_addresses(config)


@pytest.fixture(scope="session")
def small_addresses():
    """Smaller corpus for the quadratic baselines and GES."""
    config = CustomerConfig(num_rows=bench_rows(700) // 3, seed=20060403)
    return generate_addresses(config)


def write_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print("\n" + text)
