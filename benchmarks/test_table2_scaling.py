"""E6 — Table 2: Jaccard join time and sizes vs input rows.

Paper (threshold 0.85, prefix-filtered):

    Input    SSJoin input rows   Output   Time units
    100K     288,627             2,731    224
    200K     778,172             2,870    517
    250K     1,020,197           4,807    649
    330K     1,305,805           3,870    1,072

Shapes: SSJoin input grows linearly with rows; output is a data
characteristic; time grows with input (and output) size.
"""

import pytest

from benchmarks.conftest import bench_rows, write_artifact
from repro.bench.reporting import render_table
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.jaccard_join import jaccard_resemblance_join

_SIZES = [max(bench_rows(700) // 4, 50) * k for k in (1, 2, 3, 4)]
_ROWS = {}


@pytest.mark.parametrize("num_rows", _SIZES)
def test_scaling_cell(benchmark, num_rows):
    from repro.data.corruptions import CorruptionConfig

    rows = generate_addresses(
        CustomerConfig(
            num_rows=num_rows,
            duplicate_fraction=0.25,
            seed=20060403,
            corruption=CorruptionConfig(char_edit_prob=0.35, max_char_edits=1,
                                        abbreviation_prob=0.55, token_drop_prob=0.15,
                                        token_swap_prob=0.45),
        )
    )

    def run():
        return jaccard_resemblance_join(
            rows, threshold=0.85, weights="idf", implementation="prefix"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[num_rows] = (
        result.metrics.prepared_rows,
        len(result),
        result.metrics.total_seconds,
    )


def test_zz_render_table2(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    table_rows = [
        [n, _ROWS[n][0], _ROWS[n][1], f"{_ROWS[n][2]:.3f}"] for n in sorted(_ROWS)
    ]
    text = render_table(
        ["Input rows", "SSJoin input", "Output pairs", "Time (s)"], table_rows
    )
    write_artifact(results_dir, "table2_scaling.txt", "Table 2 — varying input sizes\n" + text)

    sizes = sorted(_ROWS)
    inputs = [_ROWS[n][0] for n in sizes]
    times = [_ROWS[n][2] for n in sizes]
    # Linear growth of the prepared input: 4x rows -> ~4x input (±40%).
    ratio = inputs[-1] / inputs[0]
    expected = sizes[-1] / sizes[0]
    assert 0.6 * expected <= ratio <= 1.4 * expected
    # Time must grow with size.
    assert times[-1] > times[0]
