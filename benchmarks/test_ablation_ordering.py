"""E9 — ablation: the global ordering O matters (Section 4.3.2).

The paper argues for ordering elements by increasing frequency ("we try to
eliminate higher frequency elements from the prefix filtering"). This
ablation quantifies it: candidate pairs produced by the prefix filter under
the recommended ordering vs a random and the adversarial
(decreasing-frequency) ordering. Correctness is ordering-independent
(Lemma 1); only candidate counts change.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.bench.reporting import render_table
from repro.core.metrics import ExecutionMetrics
from repro.core.ordering import (
    frequency_ordering,
    random_ordering,
    reverse_frequency_ordering,
)
from repro.core.predicate import OverlapPredicate
from repro.core.prefix_filter import prefix_filtered_ssjoin
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.joins.jaccard_join import resolve_weights
from repro.tokenize.words import words

_ROWS = {}


@pytest.fixture(scope="module")
def prepared(addresses):
    table = resolve_weights("idf", words, addresses, addresses)
    return PreparedRelation.from_strings(
        addresses, words, weights=table, norm=NORM_WEIGHT, name="R"
    )


@pytest.mark.parametrize("ordering_name", ["frequency", "random", "reverse"])
def test_ordering_candidates(benchmark, prepared, ordering_name):
    builders = {
        "frequency": lambda: frequency_ordering(prepared),
        "random": lambda: random_ordering(7, prepared),
        "reverse": lambda: reverse_frequency_ordering(prepared),
    }
    ordering = builders[ordering_name]()
    predicate = OverlapPredicate.two_sided(0.85)

    def run():
        metrics = ExecutionMetrics()
        result = prefix_filtered_ssjoin(
            prepared, prepared, predicate, ordering=ordering, metrics=metrics
        )
        return result, metrics

    result, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[ordering_name] = (
        metrics.prefix_rows,
        metrics.candidate_pairs,
        len(result),
        metrics.total_seconds,
    )


def test_zz_render_ablation(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS) == 3
    rows = [
        [name, _ROWS[name][0], _ROWS[name][1], _ROWS[name][2], f"{_ROWS[name][3]:.3f}"]
        for name in ("frequency", "random", "reverse")
    ]
    text = render_table(
        ["ordering", "prefix rows", "candidate pairs", "output", "time (s)"], rows
    )
    write_artifact(results_dir, "ablation_ordering.txt",
                   "E9 — prefix-filter ordering ablation (Jaccard 0.85)\n" + text)

    # Correctness is ordering-independent.
    outputs = {v[2] for v in _ROWS.values()}
    assert len(outputs) == 1
    # The recommended ordering must generate the fewest candidates.
    assert _ROWS["frequency"][1] <= _ROWS["random"][1]
    assert _ROWS["frequency"][1] <= _ROWS["reverse"][1]
