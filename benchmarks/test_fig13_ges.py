"""E5 — Figure 13: generalized edit similarity join.

Paper shapes: prefix-filtered ≈2× faster than basic; inline ≈25% faster
than plain prefix-filtered.
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.harness import SweepRunner
from repro.bench.reporting import render_phase_table, render_series
from repro.joins.ges_join import ges_join

_RECORDS = []


@pytest.mark.parametrize("implementation", ["basic", "prefix", "inline"])
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_ges_sweep(benchmark, small_addresses, implementation, threshold):
    runner = SweepRunner(
        "fig13-ges",
        lambda t, i: ges_join(
            small_addresses, threshold=t, weights="idf", implementation=i
        ),
    )
    benchmark.pedantic(
        lambda: runner.run([threshold], implementations=[implementation]),
        rounds=1,
        iterations=1,
    )
    _RECORDS.extend(runner.records[-1:])


def test_zz_render_figure13(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RECORDS
    panels = [
        render_phase_table(
            [r for r in _RECORDS if r.implementation == impl],
            title=f"Figure 13 — GES join [{impl}]",
        )
        for impl in ("basic", "prefix", "inline")
    ]
    text = "\n\n".join(panels)

    # GES prep (dictionary expansion) dominates wall time and is identical
    # across implementations, so the implementation comparison is the
    # post-prep execution time and the candidate-pair counts.
    def exec_seconds(r):
        return r.total_seconds - r.phase("prep")

    lines = []
    for t in THRESHOLDS:
        basic = next(r for r in _RECORDS if r.implementation == "basic" and r.threshold == t)
        inline = next(r for r in _RECORDS if r.implementation == "inline" and r.threshold == t)
        lines.append(
            f"threshold {t:.2f}: post-prep basic={exec_seconds(basic):.3f}s "
            f"inline={exec_seconds(inline):.3f}s; candidates "
            f"basic={basic.candidate_pairs} inline={inline.candidate_pairs}"
        )
    text += "\n\nPost-prep comparison:\n" + "\n".join(lines)
    write_artifact(results_dir, "fig13_ges.txt", text)

    # Deterministic shape: the prefix filter must compare no more group
    # pairs than the basic plan touches, and strictly fewer at the top.
    for t in THRESHOLDS:
        basic = next(r for r in _RECORDS if r.implementation == "basic" and r.threshold == t)
        inline = next(r for r in _RECORDS if r.implementation == "inline" and r.threshold == t)
        assert inline.candidate_pairs <= basic.candidate_pairs
    top_basic = next(r for r in _RECORDS if r.implementation == "basic" and r.threshold == 0.95)
    top_inline = next(r for r in _RECORDS if r.implementation == "inline" and r.threshold == 0.95)
    assert top_inline.candidate_pairs < top_basic.candidate_pairs
