"""E3 — Table 1: number of edit-similarity computations, SSJoin vs custom.

Paper numbers (25K rows):

    Threshold   SSJoin    Direct(custom)
    0.80        546,492   28,252,476
    0.85        129,925   21,405,651
    0.90         16,191   13,913,492
    0.95          7,772    5,961,246

Shapes to reproduce: (a) the custom plan performs orders of magnitude more
edit comparisons at every threshold, (b) both columns shrink as the
threshold rises, (c) the SSJoin column shrinks much faster.
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.reporting import render_table
from repro.joins.edit_join import edit_similarity_join
from repro.joins.gravano import gravano_edit_join

_ROWS = {}


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_count_comparisons(benchmark, addresses, threshold):
    def run():
        ssjoin_res = edit_similarity_join(
            addresses, threshold=threshold, implementation="inline"
        )
        custom_res = gravano_edit_join(addresses, threshold=threshold)
        assert ssjoin_res.pair_set() == custom_res.pair_set()
        return ssjoin_res, custom_res

    ssjoin_res, custom_res = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[threshold] = (
        ssjoin_res.metrics.similarity_comparisons,
        custom_res.metrics.similarity_comparisons,
    )


def test_zz_render_table1(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    rows = [
        [f"{t:.2f}", _ROWS[t][0], _ROWS[t][1], f"{_ROWS[t][1] / max(_ROWS[t][0], 1):.1f}x"]
        for t in sorted(_ROWS)
    ]
    text = render_table(["Threshold", "SSJoin", "Direct", "ratio"], rows)
    write_artifact(results_dir, "table1_comparisons.txt", "Table 1 — #Edit comparisons\n" + text)

    for t in THRESHOLDS:
        ssjoin_count, custom_count = _ROWS[t]
        assert custom_count > ssjoin_count, f"custom must verify more pairs at {t}"
    # Both columns shrink with threshold; SSJoin shrinks fast.
    ssjoin_counts = [_ROWS[t][0] for t in sorted(_ROWS)]
    assert ssjoin_counts[0] > ssjoin_counts[-1]
