"""E10 — ablation: the cost-based implementation choice (Sections 5 & 7).

"There is not always a clear winner between the basic and prefix-filtered
implementations[, which] motivates the requirement for a cost-based
decision." This bench runs the Jaccard join at every threshold under each
fixed implementation and under ``auto``, and checks that auto never loses
badly to the best fixed choice (the regret stays small).
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.reporting import render_table
from repro.joins.jaccard_join import jaccard_resemblance_join

_CELLS = {}


@pytest.mark.parametrize("implementation", ["basic", "prefix", "inline", "auto"])
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_optimizer_cell(benchmark, addresses, threshold, implementation):
    res = benchmark.pedantic(
        lambda: jaccard_resemblance_join(
            addresses, threshold=threshold, weights="idf", implementation=implementation
        ),
        rounds=1,
        iterations=1,
    )
    _CELLS[(threshold, implementation)] = (
        res.metrics.total_seconds,
        res.implementation,
    )


def test_zz_render_optimizer_ablation(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    regrets = []
    for t in THRESHOLDS:
        fixed = {i: _CELLS[(t, i)][0] for i in ("basic", "prefix", "inline")}
        auto_time, auto_choice = _CELLS[(t, "auto")]
        best_impl = min(fixed, key=fixed.get)
        regret = auto_time / fixed[best_impl]
        regrets.append(regret)
        rows.append(
            [f"{t:.2f}", f"{fixed['basic']:.3f}", f"{fixed['prefix']:.3f}",
             f"{fixed['inline']:.3f}", f"{auto_time:.3f}", auto_choice,
             best_impl, f"{regret:.2f}"]
        )
    text = render_table(
        ["threshold", "basic", "prefix", "inline", "auto", "auto chose",
         "best fixed", "regret"],
        rows,
    )
    write_artifact(results_dir, "ablation_optimizer.txt",
                   "E10 — cost-based implementation choice (Jaccard, IDF)\n" + text)
    # The optimizer may mispick on noise, but must not be catastrophic.
    assert max(regrets) < 3.0
