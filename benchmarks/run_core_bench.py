"""Produce ``BENCH_core.json`` — the committed core-sweep artifact.

Runs the Figure-12 Jaccard resemblance sweep (IDF-weighted word tokens
over the synthetic Customer relation) across every SSJoin implementation,
tuple-based and dictionary-encoded, and writes one ``repro-bench/v1``
JSON document with per-phase timings and tuple-vs-encoded speedups.

Usage::

    PYTHONPATH=src python benchmarks/run_core_bench.py \
        [--rows N] [--repeats K] [--out PATH]

Row count defaults to ``REPRO_BENCH_ROWS`` or 700 (see
benchmarks/conftest.py for why the paper's 25K is scaled down). The CI
perf-smoke job runs this with a small row count and uploads the JSON.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import SweepRunner
from repro.bench.reporting import render_json, render_phase_table, speedup_table
from repro.data.corruptions import CorruptionConfig
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.jaccard_join import jaccard_resemblance_join

#: Paper threshold sweep (Figures 10-13).
THRESHOLDS = (0.80, 0.85, 0.90, 0.95)

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)

#: Tuple plan vs its encoded twin — the speedup series the JSON carries.
SPEEDUP_PAIRS = (
    ("prefix", "encoded-prefix"),
    ("probe", "encoded-probe"),
    ("basic", "encoded-prefix"),
)


def jaccard_corpus(rows: int):
    """The conftest ``jaccard_addresses`` corpus, importable without pytest."""
    config = CustomerConfig(
        num_rows=rows,
        duplicate_fraction=0.25,
        seed=20060403,
        corruption=CorruptionConfig(char_edit_prob=0.35, max_char_edits=1,
                                    abbreviation_prob=0.55, token_drop_prob=0.15,
                                    token_swap_prob=0.45),
    )
    return generate_addresses(config)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_rows = int(os.environ.get("REPRO_BENCH_ROWS") or 700)
    parser.add_argument("--rows", type=int, default=default_rows)
    parser.add_argument("--repeats", type=int, default=3,
                        help="keep the fastest of K runs per cell")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_core.json")
    args = parser.parse_args(argv)

    values = jaccard_corpus(args.rows)
    runner = SweepRunner(
        "fig12-jaccard-core",
        lambda t, i: jaccard_resemblance_join(
            values, threshold=t, weights="idf", implementation=i
        ),
    )
    for threshold in THRESHOLDS:
        for implementation in IMPLEMENTATIONS:
            runner.run([threshold], implementations=[implementation],
                       repeats=args.repeats)
            r = runner.records[-1]
            print(f"  {implementation:>14} @ {threshold:.2f}: "
                  f"{r.total_seconds:.3f}s  pairs={r.result_pairs}")

    speedups = {
        f"{base}/{cont}": speedup_table(runner.records, base, cont)
        for base, cont in SPEEDUP_PAIRS
    }
    doc = render_json(
        runner.records,
        label="fig12-jaccard-core",
        meta={"rows": args.rows, "repeats": args.repeats,
              "weights": "idf", "tokenizer": "words"},
        speedups=speedups,
    )
    args.out.write_text(doc + "\n")

    print()
    for impl in IMPLEMENTATIONS:
        print(render_phase_table(
            [r for r in runner.records if r.implementation == impl],
            title=f"[{impl}]",
        ))
        print()
    for pair, series in speedups.items():
        rendered = ", ".join(f"{t:.2f}: {s:.1f}x" for t, s in series.items())
        print(f"speedup {pair}: {rendered}")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
