"""Produce ``BENCH_core.json`` — the committed core-sweep artifact.

Runs the Figure-12 Jaccard resemblance sweep (IDF-weighted word tokens
over the synthetic Customer relation) across every SSJoin implementation,
tuple-based and dictionary-encoded, and writes one ``repro-bench/v1``
JSON document with per-phase timings and tuple-vs-encoded speedups.

Usage::

    PYTHONPATH=src python benchmarks/run_core_bench.py \
        [--rows N] [--repeats K] [--out PATH]

Row count defaults to ``REPRO_BENCH_ROWS`` or 700 (see
benchmarks/conftest.py for why the paper's 25K is scaled down). The CI
perf-smoke job runs this with a small row count and uploads the JSON.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.batch_bench import aggregate_sweep, fig12_headroom, pipeline_sweep
from repro.bench.harness import SweepRunner
from repro.bench.reporting import (
    render_json,
    render_phase_table,
    render_scaling_table,
    speedup_table,
)
from repro.core.metrics import ExecutionMetrics
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import NORM_WEIGHT, PreparedRelation
from repro.core.ssjoin import SSJoin
from repro.core.verify import VerifyConfig
from repro.data.corruptions import CorruptionConfig
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.jaccard_join import jaccard_resemblance_join, resolve_weights
from repro.tokenize.words import words

#: Paper threshold sweep (Figures 10-13).
THRESHOLDS = (0.80, 0.85, 0.90, 0.95)

IMPLEMENTATIONS = (
    "basic",
    "prefix",
    "inline",
    "probe",
    "encoded-prefix",
    "encoded-probe",
)

#: Tuple plan vs its encoded twin — the speedup series the JSON carries.
SPEEDUP_PAIRS = (
    ("prefix", "encoded-prefix"),
    ("probe", "encoded-probe"),
    ("basic", "encoded-prefix"),
)

#: Worker counts for the parallel scaling sweep (encoded-prefix plan).
WORKER_COUNTS = (1, 2, 4)


def jaccard_corpus(rows: int):
    """The conftest ``jaccard_addresses`` corpus, importable without pytest."""
    config = CustomerConfig(
        num_rows=rows,
        duplicate_fraction=0.25,
        seed=20060403,
        corruption=CorruptionConfig(char_edit_prob=0.35, max_char_edits=1,
                                    abbreviation_prob=0.55, token_drop_prob=0.15,
                                    token_swap_prob=0.45),
    )
    return generate_addresses(config)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_rows = int(os.environ.get("REPRO_BENCH_ROWS") or 700)
    parser.add_argument("--rows", type=int, default=default_rows)
    default_scaling_rows = int(
        os.environ.get("REPRO_BENCH_SCALING_ROWS") or 0
    ) or None
    parser.add_argument("--scaling-rows", type=int, default=default_scaling_rows,
                        help="row count for the worker-scaling sweep "
                        "(default: max(rows, 60000), ~2x the paper's Fig-12 "
                        "scale — at toy sizes shard compute cannot amortize "
                        "dispatch and planning overhead)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="keep the fastest of K runs per cell")
    default_batch_rows = os.environ.get("REPRO_BENCH_BATCH_ROWS") or "100000,1000000"
    parser.add_argument(
        "--batch-rows", default=default_batch_rows,
        help="comma-separated row counts for the batch-vs-row pipeline "
        "sweep (default 100000,1000000; the acceptance gate is >= 1.3x "
        "at the 10^5 point)")
    parser.add_argument(
        "--batch-headroom-rows", type=int,
        default=int(os.environ.get("REPRO_BENCH_HEADROOM_ROWS") or 60000),
        help="row count for the composed-join batch headroom point "
        "(CI batch-smoke asserts batch >= row here)")
    parser.add_argument(
        "--storage-rows", type=int,
        default=int(os.environ.get("REPRO_BENCH_STORAGE_ROWS") or 0) or None,
        help="row count for the cold-vs-warm storage sweep (default: "
        "max(rows, 100000) — the acceptance gate is >= 2x warm speedup "
        "on encode-inclusive wall time at the 10^5 point)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_core.json")
    args = parser.parse_args(argv)
    if args.scaling_rows is None:
        args.scaling_rows = max(args.rows, 60000)
    if args.storage_rows is None:
        args.storage_rows = max(args.rows, 100000)

    values = jaccard_corpus(args.rows)
    runner = SweepRunner(
        "fig12-jaccard-core",
        lambda t, i: jaccard_resemblance_join(
            values, threshold=t, weights="idf", implementation=i
        ),
    )
    for threshold in THRESHOLDS:
        for implementation in IMPLEMENTATIONS:
            runner.run([threshold], implementations=[implementation],
                       repeats=args.repeats)
            r = runner.records[-1]
            print(f"  {implementation:>14} @ {threshold:.2f}: "
                  f"{r.total_seconds:.3f}s  pairs={r.result_pairs}")

    # Storage sweep (Layer 10): cold (rebuild weights, dictionary and
    # encoding from raw strings, a fresh process's state) vs warm
    # (re-open the ingested page file and adopt the persisted columnar
    # arrays) on the same Fig-12 encoded-prefix join.  Results are
    # asserted bit-identical before any number is reported.  Runs first
    # among the large sweeps: cold-vs-warm start-up is a fresh-process
    # comparison, and timing it after the 10^5-10^6-row batch sweeps
    # would measure their heap fragmentation instead of page I/O.
    from repro.bench.storage_bench import storage_sweep

    print(f"\nstorage cold-vs-warm (encoded-prefix, {args.storage_rows} rows):")
    storage_values = (
        values if args.storage_rows == args.rows
        else jaccard_corpus(args.storage_rows)
    )
    storage_block = storage_sweep(
        storage_values, thresholds=(0.80, 0.90), repeats=args.repeats
    )
    del storage_values
    print(f"  ingest={storage_block['ingest_seconds']:.3f}s "
          f"file={storage_block['file_bytes']} bytes "
          f"pages={storage_block['n_pages']}")
    for rec in storage_block["records"]:
        print(f"  @ {rec['threshold']:.2f}: cold={rec['cold_seconds']:.3f}s "
              f"warm={rec['warm_seconds']:.3f}s "
              f"speedup={rec['speedup']:.2f}x "
              f"warm_prep={rec['warm_prep_seconds']:.4f}s "
              f"digest={rec['digest']}")

    # Worker-scaling sweep: the encoded-prefix plan across worker counts
    # on the same Fig-12 workload at its own (larger) row count — the
    # operator's scaling, so the relation is prepared once outside the
    # timed region (re-tokenizing per cell is identical for every worker
    # count and is already measured by the main sweep's Prep phase).
    # workers=1 goes through the same executor (sequential-fallback mode)
    # so every scaling record carries the telemetry block.  Shards run on
    # the serial backend: the CI box is single-core, so process-pool wall
    # cannot shrink there; the in-process backend executes the identical
    # shard code and its per-shard times feed the modeled-wall figure the
    # speedup rows report (see EXPERIMENTS.md E15).  Process-backend
    # equivalence is covered by tests/parallel/test_process_backend.py.
    print(f"\nworker scaling (encoded-prefix, {args.scaling_rows} rows):")
    scaling_values = (
        values if args.scaling_rows == args.rows
        else jaccard_corpus(args.scaling_rows)
    )
    table = resolve_weights("idf", words, scaling_values, scaling_values)
    prep = PreparedRelation.from_strings(
        scaling_values, words, weights=table, norm=NORM_WEIGHT, name="R"
    )

    def scaling_join(threshold, implementation, w):
        metrics = ExecutionMetrics()
        result = SSJoin(
            prep, prep, OverlapPredicate.two_sided(threshold)
        ).execute(implementation, metrics=metrics, workers=w)
        metrics.result_pairs = len(result.pairs)
        return result

    scaling_records = []
    old_backend = os.environ.get("REPRO_PARALLEL_BACKEND")
    os.environ["REPRO_PARALLEL_BACKEND"] = "serial"
    try:
        # Repeat rounds interleave the worker counts (all of w=1,2,4 for a
        # threshold run back-to-back within a round) so slow clock drift /
        # thermal throttle lands on every cell about equally, instead of
        # inflating whole per-worker blocks and skewing the speedup ratio.
        # The fastest round per cell — by the modeled wall the scaling
        # table reports — is kept.
        best = {}
        for _ in range(args.repeats):
            for threshold in THRESHOLDS:
                for w in WORKER_COUNTS:
                    scaler = SweepRunner(
                        f"fig12-jaccard-workers-{w}",
                        lambda t, i, w=w: scaling_join(t, i, w),
                    )
                    scaler.run([threshold], implementations=["encoded-prefix"],
                               repeats=1)
                    r = scaler.records[0]
                    p = r.extra.get("parallel", {})
                    score = p.get("modeled_wall_seconds", r.total_seconds)
                    key = (w, threshold)
                    if key not in best or score < best[key][0]:
                        best[key] = (score, r)
        for w in WORKER_COUNTS:
            for threshold in THRESHOLDS:
                _, r = best[(w, threshold)]
                p = r.extra.get("parallel", {})
                print(f"  w={w} @ {r.threshold:.2f}: "
                      f"wall={p.get('wall_seconds', 0.0):.3f}s "
                      f"modeled={p.get('modeled_wall_seconds', 0.0):.3f}s "
                      f"shards={p.get('n_shards', 0)}")
                scaling_records.append(r)
    finally:
        if old_backend is None:
            os.environ.pop("REPRO_PARALLEL_BACKEND", None)
        else:
            os.environ["REPRO_PARALLEL_BACKEND"] = old_backend

    # Verification-engine sweep: the encoded-prefix plan with the bitmap
    # engine on (default) vs VerifyConfig.disabled() (the pre-engine
    # verify step), sequential (w=1 executor fallback) and 4-worker
    # modeled, on the same prepared scaling relation.  Rounds interleave
    # on/off per threshold for the same drift-resistance reason as the
    # worker sweep; fastest round per cell wins.  ``merge_reduction`` is
    # the fraction of candidate pairs that never reached a
    # merge-intersection (bitmap- or position-pruned, or admitted via
    # the identity fast path) — the engine-off plan merges every one.
    print(f"\nverify engine (encoded-prefix, {args.scaling_rows} rows):")
    verify_workers = (1, 4)
    modes = (("on", None), ("off", VerifyConfig.disabled()))
    os.environ["REPRO_PARALLEL_BACKEND"] = "serial"
    vbest = {}
    # GC hygiene: a cyclic collection landing inside one shard inflates
    # the modeled critical path by ~50ms and swamps the on/off delta, so
    # each timed run starts from a collected heap with the collector off.
    gc_was_enabled = gc.isenabled()
    try:
        gc.disable()
        for _ in range(args.repeats):
            for threshold in THRESHOLDS:
                pred = OverlapPredicate.two_sided(threshold)
                for w in verify_workers:
                    for mode, cfg in modes:
                        gc.collect()
                        m = ExecutionMetrics()
                        result = SSJoin(prep, prep, pred).execute(
                            "encoded-prefix", metrics=m, workers=w,
                            verify_config=cfg,
                        )
                        p = m.parallel_stats or {}
                        score = p.get("modeled_wall_seconds", m.total_seconds)
                        rec = {
                            "threshold": threshold,
                            "workers": w,
                            "mode": mode,
                            "seconds": score,
                            "result_pairs": len(result.pairs),
                            "candidate_pairs": m.candidate_pairs,
                            "verify": m.verify_stats(),
                        }
                        key = (threshold, w, mode)
                        if key not in vbest or score < vbest[key]["seconds"]:
                            vbest[key] = rec
    finally:
        if gc_was_enabled:
            gc.enable()
        if old_backend is None:
            os.environ.pop("REPRO_PARALLEL_BACKEND", None)
        else:
            os.environ["REPRO_PARALLEL_BACKEND"] = old_backend
    verify_summary = []
    for threshold in THRESHOLDS:
        for w in verify_workers:
            on = vbest[(threshold, w, "on")]
            off = vbest[(threshold, w, "off")]
            stats = on["verify"]
            candidates = stats["candidates"]
            merges = stats["merges_run"]
            row = {
                "threshold": threshold,
                "workers": w,
                "engine_on_seconds": on["seconds"],
                "engine_off_seconds": off["seconds"],
                "speedup": (off["seconds"] / on["seconds"]
                            if on["seconds"] > 0 else None),
                "candidates": candidates,
                "bitmap_pruned": stats["bitmap_pruned"],
                "position_pruned": stats["position_pruned"],
                "merges_run": merges,
                "merges_early_exited": stats["merges_early_exited"],
                "merge_reduction": (1.0 - merges / candidates
                                    if candidates else 0.0),
            }
            verify_summary.append(row)
            print(f"  w={w} @ {threshold:.2f}: on={row['engine_on_seconds']:.3f}s "
                  f"off={row['engine_off_seconds']:.3f}s "
                  f"speedup={row['speedup']:.2f}x "
                  f"merge_reduction={row['merge_reduction']:.1%} "
                  f"(cand={candidates} bitmap={row['bitmap_pruned']} "
                  f"pos={row['position_pruned']} merges={merges})")
    verify_block = {
        "rows": args.scaling_rows,
        "implementation": "encoded-prefix",
        "workers": list(verify_workers),
        "backend": "serial",
        "records": sorted(vbest.values(),
                          key=lambda r: (r["threshold"], r["workers"], r["mode"])),
        "summary": verify_summary,
    }

    # Batch-execution sweep (Layer 8): the vectorized plan protocol vs the
    # row protocol on the join-free operator pipeline (10^5-10^6 rows) plus
    # the composed Fig-12 join at the headroom point.  Both double as
    # equivalence checks — they raise on any row or counter divergence.
    batch_rows = [int(r) for r in str(args.batch_rows).split(",") if r]
    print(f"\nbatch execution (pipeline rows={batch_rows}):")
    pipeline_block = pipeline_sweep(batch_rows, repeats=args.repeats)
    for rec in pipeline_block["records"]:
        print(f"  rows={rec['rows']}: row={rec['row_seconds']:.3f}s "
              f"batch={rec['best_batch_seconds']:.3f}s "
              f"speedup={rec['speedup']:.2f}x")
    print(f"batch execution (aggregate rows={batch_rows}):")
    aggregate_block = aggregate_sweep(batch_rows, repeats=args.repeats)
    for rec in aggregate_block["records"]:
        print(f"  rows={rec['rows']}: row={rec['row_seconds']:.3f}s "
              f"batch={rec['best_batch_seconds']:.3f}s "
              f"speedup={rec['speedup']:.2f}x")
    print(f"batch headroom (fig12 join, {args.batch_headroom_rows} rows):")
    headroom_block = fig12_headroom(
        args.batch_headroom_rows, repeats=args.repeats
    )
    print(f"  row={headroom_block['row_seconds']:.3f}s "
          f"batch={headroom_block['batch_seconds']:.3f}s "
          f"speedup={headroom_block['speedup']:.2f}x")
    batch_block = {
        "pipeline": pipeline_block,
        "aggregate": aggregate_block,
        "fig12_headroom": headroom_block,
    }

    speedups = {
        f"{base}/{cont}": speedup_table(runner.records, base, cont)
        for base, cont in SPEEDUP_PAIRS
    }
    doc = render_json(
        runner.records,
        label="fig12-jaccard-core",
        meta={"rows": args.rows, "repeats": args.repeats,
              "weights": "idf", "tokenizer": "words",
              "worker_counts": list(WORKER_COUNTS),
              "scaling_rows": args.scaling_rows,
              "scaling_backend": "serial",
              "storage_rows": args.storage_rows},
        speedups=speedups,
        parallel=scaling_records,
        verify_engine=verify_block,
        batch_exec=batch_block,
        storage=storage_block,
    )
    # Atomic publish: a reader (or an interrupted run) never observes a
    # torn BENCH_core.json — the temp file lands in the same directory so
    # os.replace stays a same-filesystem rename.
    tmp = args.out.with_name(args.out.name + ".tmp")
    tmp.write_text(doc + "\n")
    os.replace(tmp, args.out)

    print()
    for impl in IMPLEMENTATIONS:
        print(render_phase_table(
            [r for r in runner.records if r.implementation == impl],
            title=f"[{impl}]",
        ))
        print()
    print(render_scaling_table(scaling_records, title="[worker scaling]"))
    print()
    for pair, series in speedups.items():
        rendered = ", ".join(f"{t:.2f}: {s:.1f}x" for t, s in series.items())
        print(f"speedup {pair}: {rendered}")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
