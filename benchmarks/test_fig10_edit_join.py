"""E1 — Figure 10: edit-similarity join, all three SSJoin implementations.

Paper shape to reproduce: prefix-filtered implementations beat the basic
implementation at high thresholds (⩾ 0.85); the basic implementation
catches up (or wins) at lower thresholds; the inline variant beats the
plain prefix-filtered variant by avoiding the regroup joins.
"""

import pytest

from benchmarks.conftest import THRESHOLDS, write_artifact
from repro.bench.harness import SweepRunner
from repro.bench.figures import figure_from_records
from repro.bench.reporting import render_phase_table, render_series
from repro.joins.edit_join import edit_similarity_join

_RECORDS = []


@pytest.mark.parametrize("implementation", ["basic", "prefix", "inline"])
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_edit_similarity_sweep(benchmark, addresses, implementation, threshold):
    runner = SweepRunner(
        "fig10-edit",
        lambda t, i: edit_similarity_join(addresses, threshold=t, implementation=i),
    )

    def run():
        return runner.run([threshold], implementations=[implementation])

    benchmark.pedantic(run, rounds=1, iterations=1)
    _RECORDS.extend(runner.records[-1:])


def test_zz_render_figure10(benchmark, results_dir):
    """Render the three panels of Figure 10 (runs after the sweep cells)."""
    assert _RECORDS, "sweep cells must run first"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    panels = []
    for impl in ("basic", "prefix", "inline"):
        records = [r for r in _RECORDS if r.implementation == impl]
        panels.append(
            render_phase_table(records, title=f"Figure 10 — edit similarity join [{impl}]")
        )
    text = "\n\n".join(panels)
    text += "\n\n" + "\n\n".join(
        figure_from_records(
            [r for r in _RECORDS if r.implementation == impl],
            title=f"ASCII stacked bars [{impl}]",
        )
        for impl in ("basic", "prefix", "inline")
    )

    series = render_series(_RECORDS)
    # The paper's claim at high thresholds: prefix-family beats basic.
    basic = dict(series["basic"])
    inline = dict(series["inline"])
    shape = []
    for t in THRESHOLDS:
        winner = "inline" if inline[t] <= basic[t] else "basic"
        shape.append(f"threshold {t:.2f}: winner={winner} "
                     f"(basic={basic[t]:.3f}s inline={inline[t]:.3f}s)")
    text += "\n\nWinner per threshold:\n" + "\n".join(shape)
    write_artifact(results_dir, "fig10_edit_join.txt", text)
    assert inline[0.95] <= basic[0.95], "inline must win at the tightest threshold"
