#!/usr/bin/env python
"""End-to-end data cleaning: the use case the paper's introduction opens with.

"Owing to various errors in the data due to typing mistakes, differences in
conventions, etc., product names and customer names in sales records may
not match exactly with master product catalog and reference customer
registration records." This example runs the full cleaning pipeline over a
dirty customer-address column: similarity join → duplicate clustering →
canonical-form election → rewritten column.

Run:  python examples/cleaning_pipeline.py [num_rows]
"""

import sys

from repro.cleaning import dedupe, elect_centroid, elect_longest
from repro.data.customers import CustomerConfig, generate_addresses


def main(num_rows: int = 300) -> None:
    rows = generate_addresses(
        CustomerConfig(num_rows=num_rows, duplicate_fraction=0.3, seed=2006)
    )
    print(f"dirty column: {len(rows)} rows, {len(set(rows))} distinct values")

    report = dedupe(rows, similarity="edit", threshold=0.85)
    print(f"\n{report.summary()}")
    print(f"plans chosen per cluster-size profile: {report.join_result.implementation}")

    print("\nlargest duplicate clusters:")
    for cluster in sorted(report.clusters, key=len, reverse=True)[:4]:
        canonical = report.mapping[cluster[0]]
        print(f"  canonical: {canonical!r}")
        for member in cluster:
            if member != canonical:
                print(f"    <- {member!r}")

    cleaned = report.clean_values()
    print(
        f"\nafter cleaning: {len(set(cleaned))} distinct values "
        f"({len(set(rows)) - len(set(cleaned))} variants eliminated)"
    )

    print("\n-- electing by longest instead of centroid --")
    report2 = dedupe(rows, similarity="edit", threshold=0.85, elector=elect_longest)
    changed = sum(
        1
        for cluster in report2.clusters
        if report2.mapping[cluster[0]] != report.mapping.get(cluster[0])
    )
    print(f"{changed} clusters elected a different representative")

    print("\n-- conservative merging (bridge threshold 0.92) --")
    report3 = dedupe(rows, similarity="edit", threshold=0.85, bridge_threshold=0.92)
    print(
        f"clusters: {report.num_clusters} (merge-all) vs "
        f"{report3.num_clusters} (confident edges only)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
