#!/usr/bin/env python
"""Sales-record → product-catalog matching: the paper's opening example.

Dirty sales records must be joined to the master product catalog despite
typos, abbreviations and reordering. This runs the R–S (two-relation) form
of the similarity joins, scores precision/recall against the generator's
ground truth, and compares similarity functions on the same workload.

Run:  python examples/catalog_matching.py
"""

from repro.data.products import ProductConfig, generate_products
from repro.joins.topk import topk_matches
from repro.sim.ges import ges
from repro.tokenize.qgrams import qgrams


def score(matches, data) -> tuple:
    """(accuracy, coverage): top-1 correctness and fraction matched at all."""
    correct = matched = 0
    for i, sale in enumerate(data.sales):
        best = matches.get(sale, [])
        if best:
            matched += 1
            if best[0].right == data.truth[i]:
                correct += 1
    n = len(data.sales)
    return correct / n, matched / n


def main() -> None:
    data = generate_products(ProductConfig(num_products=150, num_sales=250, seed=6))
    print(f"catalog: {len(data.catalog)} products; "
          f"sales: {len(data.sales)} records (70% corrupted)")
    print(f"sample catalog entry: {data.catalog[0]!r}")
    print(f"sample sales record : {data.sales[0]!r}")

    print("\n-- q-gram containment lookup (robust to in-word typos) --")
    matches = topk_matches(
        data.sales, data.catalog, k=1, threshold=0.35, weights="idf",
        tokenizer=lambda s: qgrams(s, 3),
    )
    accuracy, coverage = score(matches, data)
    print(f"top-1 accuracy {accuracy:.1%}, coverage {coverage:.1%}")

    print("\n-- same candidates re-ranked by generalized edit similarity --")
    matches = topk_matches(
        data.sales, data.catalog, k=1, threshold=0.35, weights="idf",
        tokenizer=lambda s: qgrams(s, 3), similarity=ges,
    )
    accuracy, coverage = score(matches, data)
    print(f"top-1 accuracy {accuracy:.1%}, coverage {coverage:.1%}")

    print("\n-- word-token containment (fails on in-word typos) --")
    matches = topk_matches(
        data.sales, data.catalog, k=1, threshold=0.35, weights="idf",
    )
    accuracy, coverage = score(matches, data)
    print(f"top-1 accuracy {accuracy:.1%}, coverage {coverage:.1%}")


if __name__ == "__main__":
    main()
