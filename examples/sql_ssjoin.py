#!/usr/bin/env python
"""The paper's plans as literal SQL, run on the bundled engine.

The ICDE'06 paper presents SSJoin as something a relational engine executes
with ordinary operators. This example writes Figure 7 (the basic SSJoin)
as the SQL it describes, runs it on the mini-SQL front end, and checks it
against the operator implementation.

Run:  python examples/sql_ssjoin.py
"""

from repro.core.basic import basic_ssjoin
from repro.core.predicate import OverlapPredicate
from repro.core.prepared import PreparedRelation
from repro.relational import Catalog, Relation
from repro.relational.sql import execute_sql
from repro.tokenize.qgrams import qgrams

STRINGS = ["Microsoft Corp", "Mcrosoft Corp", "Oracle Corp", "Oracle Corporation"]

FIGURE_7_SQL = """
SELECT r.a AS a_r, s.a AS a_s, SUM(r.w) AS overlap
FROM tokens r JOIN tokens s ON r.b = s.b
GROUP BY r.a, s.a
HAVING SUM(r.w) >= 10
ORDER BY a_r, a_s
"""


def main() -> None:
    prepared = PreparedRelation.from_strings(
        STRINGS, lambda s: qgrams(s, 3), norm="length"
    )

    # Normalized representation as a SQL table (Figure 1's shape); the
    # ordinal-encoded elements are serialized so they are plain strings.
    catalog = Catalog()
    rows = [(a, repr(b), w) for a, b, w, _ in prepared.relation.rows]
    catalog.register("tokens", Relation.from_rows(["a", "b", "w"], rows))

    print("== Figure 7 as SQL ==")
    print(FIGURE_7_SQL.strip())
    result = execute_sql(catalog, FIGURE_7_SQL)
    print("\nresult:")
    for a_r, a_s, overlap in result.rows:
        marker = " (identity)" if a_r == a_s else ""
        print(f"  {a_r!r} ~ {a_s!r}  overlap={overlap:g}{marker}")

    print("\n== Same predicate through the operator ==")
    op_result = basic_ssjoin(prepared, prepared, OverlapPredicate.absolute(10.0))
    op_pairs = {(r[0], r[1]) for r in op_result.rows}
    sql_pairs = {(r[0], r[1]) for r in result.rows}
    print(f"operator pairs == SQL pairs: {op_pairs == sql_pairs}")

    print("\n== Ad-hoc analytics on the token table ==")
    heavy = execute_sql(
        catalog,
        "SELECT b, COUNT(*) AS strings FROM tokens "
        "GROUP BY b HAVING COUNT(*) >= 2 ORDER BY strings DESC, b LIMIT 5",
    )
    print("most shared q-grams:")
    for gram, count in heavy.rows:
        print(f"  {gram}  in {count} strings")


if __name__ == "__main__":
    main()
