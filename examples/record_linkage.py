#!/usr/bin/env python
"""Multi-field record linkage: matching person records across two tables.

Single-string joins miss structure: "smith, ann" vs "ann smith" looks bad
as one string, but the *records* agree on address, email and phone. This
example links the two synthetic person tables with weighted field rules,
compares blocked vs exhaustive candidate generation, and then clusters the
links into identities.

Run:  python examples/record_linkage.py
"""

from repro.cleaning import FieldRule, cluster_pairs, record_linkage_join
from repro.data.persons import PersonConfig, generate_persons

RULES = (
    FieldRule("address", weight=1.5, similarity="jaccard"),
    FieldRule("email", weight=1.5, similarity="edit"),
    FieldRule("phone", weight=1.0, similarity="exact"),
)


def main() -> None:
    data = generate_persons(
        PersonConfig(num_persons=150, seed=33, disagreement_prob=0.12)
    )
    left = [dict(r, id=f"A:{r['name']}") for r in data.table1]
    right = [dict(r, id=f"B:{r['name']}") for r in data.table2]
    truth = {(f"A:{n1}", f"B:{n2}") for n1, n2 in data.truth.items()}

    print(f"table A: {len(left)} records ('last, first' naming)")
    print(f"table B: {len(right)} records ('first last' naming)")
    print("field rules:", ", ".join(
        f"{r.field}(w={r.weight:g},{r.similarity})" for r in RULES
    ))

    print("\n-- blocked candidate generation (SSJoin on the address field) --")
    res = record_linkage_join(left, right, rules=RULES, threshold=0.6)
    hits = truth & res.pair_set()
    print(f"matched {len(res)} pairs; recall {len(hits)}/{len(truth)}; "
          f"scored only {res.metrics.similarity_comparisons} candidates "
          f"(cross product would be {len(left) * len(right)})")

    print("\n-- exhaustive scoring (completeness check) --")
    full = record_linkage_join(left, right, rules=RULES, threshold=0.6,
                               exhaustive=True)
    print(f"exhaustive found {len(full)} pairs; "
          f"blocking missed {len(full.pair_set() - res.pair_set())} of them")

    print("\n-- strongest links --")
    for pair in res.top(5):
        print(f"  {pair.similarity:.3f}  {pair.left} == {pair.right}")

    clusters = cluster_pairs([p.as_tuple() for p in res.pairs])
    print(f"\nclustered into {len(clusters)} identities "
          f"(largest has {max(map(len, clusters))} records)")


if __name__ == "__main__":
    main()
