#!/usr/bin/env python
"""Fuzzy match lookup: top-K matching composed from SSJoin (Section 6).

An incoming (dirty) record is matched against a clean reference table —
the scenario of Chaudhuri et al.'s fuzzy match [4]. The SSJoin operator
produces candidates above a containment threshold; a top-k operator keeps
the best few, optionally re-ranked by a finer similarity (GES).

Run:  python examples/fuzzy_lookup.py
"""

from repro import topk_matches
from repro.data.customers import CustomerConfig, generate_addresses
from repro.data.corruptions import corrupt
from repro.data.rng import make_rng
from repro.sim.ges import ges


def main() -> None:
    reference = generate_addresses(
        CustomerConfig(num_rows=300, duplicate_fraction=0.0, seed=21)
    )
    rng = make_rng(77, "queries")
    clean_sources = [reference[i] for i in (3, 42, 117, 200)]
    queries = [corrupt(s, rng) for s in clean_sources]

    print("== SSJoin + top-k: fuzzy lookup against a reference table ==")
    print(f"reference table: {len(reference)} clean addresses")

    matches = topk_matches(queries, reference, k=3, threshold=0.3, weights="idf")
    for query, source in zip(queries, clean_sources):
        print(f"\nquery : {query!r}")
        print(f"truth : {source!r}")
        for rank, m in enumerate(matches[query], start=1):
            marker = "<-- correct" if m.right == source else ""
            print(f"  #{rank}  {m.similarity:.3f}  {m.right!r} {marker}")

    print("\n== Same lookup, re-ranked by generalized edit similarity ==")
    matches = topk_matches(
        queries, reference, k=1, threshold=0.3, weights="idf", similarity=ges
    )
    correct = sum(
        1
        for query, source in zip(queries, clean_sources)
        if matches[query] and matches[query][0].right == source
    )
    print(f"top-1 accuracy with GES re-ranking: {correct}/{len(queries)}")


if __name__ == "__main__":
    main()
