#!/usr/bin/env python
"""Quickstart: the SSJoin operator and the similarity joins built on it.

Run:  python examples/quickstart.py
"""

from repro import (
    OverlapPredicate,
    PreparedRelation,
    SSJoin,
    edit_similarity_join,
    jaccard_resemblance_join,
)
from repro.tokenize.qgrams import qgrams
from repro.tokenize.words import words


def raw_operator() -> None:
    """Use the SSJoin primitive directly, as in the paper's Example 1."""
    print("== The SSJoin primitive ==")
    r = PreparedRelation.from_strings(
        ["Microsoft Corp"], lambda s: qgrams(s, 3), norm="length", name="R"
    )
    s = PreparedRelation.from_strings(
        ["Mcrosoft Corp", "Oracle Corp"], lambda t: qgrams(t, 3), norm="length", name="S"
    )
    op = SSJoin(r, s, OverlapPredicate.absolute(10.0))

    print(op.explain("auto"))
    result = op.execute("auto")
    for a, b in result.pair_tuples():
        print(f"  matched: {a!r} ~ {b!r}")
    print(f"  metrics: {result.metrics.summary()}")


def similarity_joins() -> None:
    """The high-level joins: one call, exact answers, telemetry included."""
    print("\n== Similarity joins on the operator ==")
    companies = [
        "microsoft corporation",
        "microsoft corp",
        "mcrosoft corp",
        "oracle corporation",
        "oracle corp",
        "intl business machines",
    ]

    print("edit similarity >= 0.80:")
    for pair in edit_similarity_join(companies, threshold=0.80):
        print(f"  {pair.left!r} ~ {pair.right!r}  (ES={pair.similarity:.3f})")

    print("jaccard resemblance >= 0.50 (word tokens, IDF weights):")
    for pair in jaccard_resemblance_join(companies, threshold=0.50):
        print(f"  {pair.left!r} ~ {pair.right!r}  (JR={pair.similarity:.3f})")


def predicate_shapes() -> None:
    """The three predicate shapes of the paper's Example 2."""
    print("\n== Predicate shapes (Example 2) ==")
    r = PreparedRelation.from_strings(
        ["microsoft corp"], words, norm="cardinality", name="R"
    )
    s = PreparedRelation.from_strings(
        ["microsoft corp redmond"], words, norm="cardinality", name="S"
    )
    for label, pred in [
        ("absolute overlap >= 2", OverlapPredicate.absolute(2.0)),
        ("1-sided: overlap >= 0.8*|R|", OverlapPredicate.one_sided(0.8, side="left")),
        ("2-sided: overlap >= 0.8*both", OverlapPredicate.two_sided(0.8)),
    ]:
        got = SSJoin(r, s, pred).execute("basic").pair_tuples()
        print(f"  {label}: {'match' if got else 'no match'}")


if __name__ == "__main__":
    raw_operator()
    similarity_joins()
    predicate_shapes()
