#!/usr/bin/env python
"""Warehouse address deduplication — the paper's motivating scenario.

A sales warehouse accumulates customer addresses with typos, abbreviations
and convention differences. This example generates such a relation,
deduplicates it with three different similarity functions, and shows how
the implementations compare — including what the UDF-over-cross-product
plan would have cost.

Run:  python examples/dedupe_customers.py [num_rows]
"""

import sys

from repro import (
    direct_join,
    edit_similarity_join,
    ges_join,
    jaccard_resemblance_join,
)
from repro.data.customers import CustomerConfig, generate_addresses
from repro.sim.edit import edit_similarity


def main(num_rows: int = 400) -> None:
    config = CustomerConfig(num_rows=num_rows, duplicate_fraction=0.25, seed=99)
    addresses = generate_addresses(config)
    print(f"Customer relation: {len(addresses)} addresses "
          f"({config.duplicate_fraction:.0%} corrupted near-duplicates)")
    print("sample:", addresses[0])

    print("\n-- edit similarity join (threshold 0.85) --")
    res = edit_similarity_join(addresses, threshold=0.85, implementation="auto")
    print(f"found {len(res)} duplicate pairs via the {res.implementation} plan")
    for pair in res.top(5):
        print(f"  {pair.similarity:.3f}  {pair.left!r} ~ {pair.right!r}")
    print(f"  {res.metrics.summary()}")

    print("\n-- jaccard resemblance join (threshold 0.6, IDF weights) --")
    res = jaccard_resemblance_join(addresses, threshold=0.6, weights="idf")
    print(f"found {len(res)} duplicate pairs via the {res.implementation} plan")
    for pair in res.top(3):
        print(f"  {pair.similarity:.3f}  {pair.left!r} ~ {pair.right!r}")

    print("\n-- generalized edit similarity join (threshold 0.85) --")
    res = ges_join(addresses[: num_rows // 2], threshold=0.85, weights="idf")
    print(f"found {len(res)} directed pairs via the {res.implementation} plan")

    print("\n-- what the UDF cross-product plan costs --")
    subset = addresses[: num_rows // 4]
    direct = direct_join(subset, similarity=edit_similarity, threshold=0.85)
    via_ssjoin = edit_similarity_join(subset, threshold=0.85)
    print(f"on {len(subset)} rows: direct plan ran "
          f"{direct.metrics.similarity_comparisons} edit computations in "
          f"{direct.metrics.total_seconds:.2f}s; the SSJoin plan ran "
          f"{via_ssjoin.metrics.similarity_comparisons} in "
          f"{via_ssjoin.metrics.total_seconds:.2f}s — same "
          f"{len(direct)} pairs")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
