#!/usr/bin/env python
"""Author integration across sources — Section 3.4's co-occurrence join.

Two publication sources list the same authors under different naming
conventions ("a. gupta" vs "anil gupta"), so name similarity fails; the
sets of paper titles co-occurring with each author identify them instead
(paper Example 5 / Figure 5). A soft-FD join (Example 6 / Figure 6) then
shows the same trick on structured person records.

Run:  python examples/integrate_publications.py
"""

from repro import cooccurrence_join, fd_agreement_join
from repro.data.persons import PersonConfig, generate_persons
from repro.data.publications import PublicationConfig, generate_publications
from repro.sim.edit import edit_similarity


def author_integration() -> None:
    print("== Co-occurrence join: unify authors across two sources ==")
    data = generate_publications(PublicationConfig(num_authors=40, seed=5))
    print(f"source1: {len(data.source1)} (author, title) rows — 'f. last' style")
    print(f"source2: {len(data.source2)} rows — 'first last' style")

    res = cooccurrence_join(data.source2, data.source1, threshold=0.9, weights=None)
    truth = {(full, abbrev) for abbrev, full in data.truth.items()}
    hits = truth & res.pair_set()
    print(f"join produced {len(res)} pairs; recall vs ground truth: "
          f"{len(hits)}/{len(truth)}")
    for full, abbrev in sorted(hits)[:5]:
        es = edit_similarity(full, abbrev)
        print(f"  {full!r} == {abbrev!r}  (name edit similarity only {es:.2f} — "
              "textual matching would have missed it)" if es < 0.8 else
              f"  {full!r} == {abbrev!r}")


def person_linkage() -> None:
    print("\n== Soft-FD join: link person records agreeing on 2 of 3 FDs ==")
    data = generate_persons(PersonConfig(num_persons=120, seed=8,
                                         disagreement_prob=0.12))
    res = fd_agreement_join(
        data.table1, data.table2, key="name",
        attributes=("address", "email", "phone"), k=2,
    )
    truth = set(data.truth.items())
    hits = truth & res.pair_set()
    print(f"joined {len(res)} pairs; recall: {len(hits)}/{len(truth)}")
    for pair in res.top(3):
        print(f"  {pair.left!r} ~ {pair.right!r} "
              f"(agrees on {pair.similarity * 3:.0f}/3 attributes)")


if __name__ == "__main__":
    author_integration()
    person_linkage()
