#!/usr/bin/env python
"""The bundled relational engine as a standalone tool.

The substrate built for SSJoin is a usable micro-database: catalog, fluent
query builder, SQL front end, EXPLAIN. This example loads the synthetic
customer data and answers ordinary analytics questions three equivalent
ways — raw operators, the Query builder, and SQL — showing they agree.

Run:  python examples/engine_analytics.py
"""

from repro.data.customers import CustomerConfig, generate_customers
from repro.relational import (
    Catalog,
    Query,
    Relation,
    agg_count,
    col,
    group_by,
)
from repro.relational.sql import execute_sql


def main() -> None:
    rows = generate_customers(CustomerConfig(num_rows=400, seed=17))
    records = [
        (name, address, address.split()[-3], address.split()[-2])
        for name, address in rows
    ]
    catalog = Catalog()
    catalog.register(
        "customers",
        Relation.from_rows(["name", "address", "city", "state"], records),
    )

    print("== Q: customers per state (top 5) — three equivalent ways ==\n")

    # 1. Raw operators.
    by_state = group_by(
        catalog.get("customers"), ["state"], [agg_count("n")]
    ).order_by(["n"], reverse=True).head(5)
    print("raw operators :", list(by_state.rows))

    # 2. Fluent query builder.
    q = (
        Query.table(catalog, "customers")
        .group_by(["state"], [agg_count("n")])
        .order_by(("n", "desc"), "state")
        .limit(5)
    )
    print("query builder :", list(q.execute().rows))

    # 3. SQL.
    sql = ("SELECT state, COUNT(*) AS n FROM customers "
           "GROUP BY state ORDER BY n DESC, state LIMIT 5")
    print("sql           :", list(execute_sql(catalog, sql).rows))

    print("\n== EXPLAIN of the builder plan ==")
    print(q.explain())

    print("\n== Q: cities with multiple distinct customer names ==")
    out = execute_sql(
        catalog,
        "SELECT city, COUNT(*) AS residents FROM customers "
        "GROUP BY city HAVING COUNT(*) >= 10 ORDER BY residents DESC LIMIT 5",
    )
    for city, n in out.rows:
        print(f"  {city}: {n}")

    print("\n== Q: states sharing a city name (self-join) ==")
    out = execute_sql(
        catalog,
        "SELECT DISTINCT a.state AS s1, b.state AS s2 FROM customers a "
        "JOIN customers b ON a.city = b.city "
        "WHERE a.state < b.state LIMIT 5",
    )
    for s1, s2 in out.rows:
        print(f"  {s1} and {s2}")


if __name__ == "__main__":
    main()
