#!/usr/bin/env python
"""Inside the operator: plans, cost model, orderings, and phase metrics.

For users integrating SSJoin into their own pipelines: how to inspect what
the operator will do (EXPLAIN), how the cost-based optimizer prices the
three physical implementations, and how the prefix-filter ordering changes
candidate counts.

Run:  python examples/plan_inspection.py
"""

from repro import PreparedRelation, SSJoin, OverlapPredicate
from repro.core.metrics import ExecutionMetrics
from repro.core.optimizer import CostModel
from repro.core.ordering import (
    frequency_ordering,
    reverse_frequency_ordering,
)
from repro.core.prefix_filter import prefix_filtered_ssjoin
from repro.data.customers import CustomerConfig, generate_addresses
from repro.joins.jaccard_join import resolve_weights
from repro.tokenize.words import words


def main() -> None:
    addresses = generate_addresses(CustomerConfig(num_rows=300, seed=31))
    table = resolve_weights("idf", words, addresses, addresses)
    prepared = PreparedRelation.from_strings(
        addresses, words, weights=table, norm="weight", name="Customer"
    )
    predicate = OverlapPredicate.two_sided(0.85)
    op = SSJoin(prepared, prepared, predicate)

    print("== EXPLAIN ==")
    print(op.explain("auto"))

    print("\n== Cost model ==")
    for estimate in CostModel().estimate_all(prepared, prepared, predicate):
        print(f"  {estimate!r}")

    print("\n== Execution metrics per implementation ==")
    for impl in ("basic", "prefix", "inline"):
        result = op.execute(impl)
        print(f"  {result.metrics.summary()}")

    print("\n== Ordering ablation (Section 4.3.2) ==")
    for label, ordering in [
        ("increasing frequency (paper)", frequency_ordering(prepared)),
        ("decreasing frequency (adversarial)", reverse_frequency_ordering(prepared)),
    ]:
        metrics = ExecutionMetrics()
        prefix_filtered_ssjoin(prepared, prepared, predicate,
                               ordering=ordering, metrics=metrics)
        print(f"  {label}: {metrics.candidate_pairs} candidate pairs, "
              f"{metrics.prefix_rows} prefix rows")


if __name__ == "__main__":
    main()
