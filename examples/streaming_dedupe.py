#!/usr/bin/env python
"""Streaming deduplication: flag duplicates the moment a record arrives.

A batch join answers "which pairs exist?"; production ingestion needs
"does this new row duplicate anything we already have?" — per arrival,
without recomputation. IncrementalSSJoin maintains prefix indexes over
everything ingested and answers exactly that, with the same results the
batch operator would produce.

Run:  python examples/streaming_dedupe.py
"""

from repro.core import IncrementalSSJoin, OverlapPredicate, PreparedRelation
from repro.data.customers import CustomerConfig, generate_addresses
from repro.tokenize.words import words


def main() -> None:
    rows = generate_addresses(
        CustomerConfig(num_rows=250, duplicate_fraction=0.25, seed=88)
    )
    prepared = PreparedRelation.from_strings(rows, words)
    predicate = OverlapPredicate.two_sided(0.8)

    # Seed the prefix ordering from the first 50 arrivals.
    sample = PreparedRelation.from_strings(rows[:50], words)
    inc = IncrementalSSJoin.from_sample(predicate, sample)

    flagged = 0
    examples = []
    for i, key in enumerate(prepared.keys()):
        matches = inc.add(key, prepared.group(key))
        incoming_hits = [m for m in matches if m[0] == key]
        if incoming_hits:
            flagged += 1
            if len(examples) < 4:
                examples.append((key, incoming_hits[0][1]))

    m = inc.metrics
    print(f"ingested {len(inc)} records; {flagged} arrivals flagged as "
          f"probable duplicates at ingest time")
    print(f"work: {m.candidate_pairs} candidates probed, "
          f"{m.similarity_comparisons} exact overlaps computed "
          f"(cross-check against all prior rows would be "
          f"~{len(inc) * (len(inc) - 1) // 2})")
    print("\nexample flags:")
    for new, existing in examples:
        print(f"  incoming {new!r}")
        print(f"     dupes {existing!r}")


if __name__ == "__main__":
    main()
